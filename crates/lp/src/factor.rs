//! Basis factorizations behind the simplex core.
//!
//! Every revised-simplex iteration needs the basis matrix `B` applied in two
//! directions — `ftran` solves `B·d = a` (the pivot direction) and `btran`
//! solves `Bᵀ·y = c_B` (the dual prices) — plus a cheap rank-one `update`
//! when one basic column is replaced, and a from-scratch `refactorize` that
//! washes out the drift the updates accumulate.  The `Factorization` trait
//! is that seam: the `SimplexCore` iteration loop
//! is written against it, and the concrete linear algebra is pluggable per
//! solve through [`SolverTuning::factor`](crate::SolverTuning):
//!
//! * `DenseInverse` — the explicit dense `B⁻¹` the sparse backend carried
//!   before the seam existed: `O(m²)` solves, `O(m²)` Gauss-Jordan pivot
//!   updates, `O(m³)`-flavored refactorization.  Simple, and the reference
//!   the LU path is pinned against.
//! * `LuFactor` — a sparse LU elimination with **Markowitz ordering**
//!   (pivots chosen to minimize `(rowcount−1)·(colcount−1)` fill, under a
//!   threshold guard for stability) and **Forrest–Tomlin updates**: a basis
//!   change replaces the departing column of `U` in place with the spike
//!   `U·d`, moves its pivot step to the end of the elimination order, and
//!   eliminates the pending row into one sparse *row eta* — so `U` stays
//!   triangular and compact instead of growing an unbounded product-form
//!   eta file.  An update declines (forcing refactorization) only when the
//!   new pivot is unstable relative to the spike or the eliminated row
//!   fills beyond a threshold.  On the analysis's extremely sparse bases
//!   both solves and updates run in `O(nnz)` rather than `O(m²)`.
//!
//! Row extension (the warm `add_constraint` path) goes through
//! `Factorization::extend_row`: the dense inverse grows by a bordered
//! block — guarded against a near-singular border pivot — while the LU
//! factors decline (`FactorError::NeedsRefactorization`) and the core
//! refactorizes lazily at the next solve.

use std::fmt;
use std::str::FromStr;

use crate::core::ColumnStore;

/// Minimum magnitude accepted for an update or border pivot (matches the
/// solvers' pivot tolerance).
const PIVOT_EPS: f64 = 1e-7;
/// Below this magnitude a candidate LU pivot counts as structurally zero and
/// the basis as numerically singular.
const SINGULAR_TOL: f64 = 1e-11;
/// Threshold-pivoting factor: an LU pivot must be at least this fraction of
/// the largest entry in its column (the classic Markowitz/threshold
/// compromise between sparsity and stability).
const LU_THRESHOLD: f64 = 0.1;
/// Entries driven below this magnitude by elimination are dropped as exact
/// cancellations.
const DROP_TOL: f64 = 1e-13;
/// Hard cap on the row-eta file; reaching it forces a refactorization (the
/// core's periodic refresh normally keeps the file far shorter).
const ETA_CAP: usize = 512;
/// A Forrest–Tomlin update declines when the new diagonal is smaller than
/// this fraction of the spike's largest entry: the replacement would be
/// numerically dominated and the basis should be refactorized instead.
const FT_STAB_TOL: f64 = 1e-8;
/// A Forrest–Tomlin update declines when eliminating the pending row takes
/// more than this many row operations — the fill has outgrown what an
/// in-place update saves over refactorizing.
const FT_FILL_CAP: usize = 64;

/// Which basis factorization a solve uses (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorKind {
    /// Explicit dense `B⁻¹` (the pre-seam behavior; the reference).
    #[default]
    Dense,
    /// Markowitz-ordered sparse LU with product-form eta updates.
    Lu,
}

impl FactorKind {
    /// The kind's canonical CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            FactorKind::Dense => "dense",
            FactorKind::Lu => "lu",
        }
    }

    /// All kinds, for matrix tests and sweeps.
    pub const ALL: [FactorKind; 2] = [FactorKind::Dense, FactorKind::Lu];

    /// Instantiates an empty factorization of this kind.
    pub(crate) fn instantiate(self) -> Box<dyn Factorization> {
        match self {
            FactorKind::Dense => Box::new(DenseInverse::default()),
            FactorKind::Lu => Box::new(LuFactor::default()),
        }
    }
}

impl fmt::Display for FactorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FactorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(FactorKind::Dense),
            "lu" => Ok(FactorKind::Lu),
            other => Err(format!(
                "unknown factorization `{other}` (expected dense or lu)"
            )),
        }
    }
}

/// How a warm session re-solves after incremental rows left the basis
/// primal-infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStrategy {
    /// Dual-simplex pivots from the (still dual-feasible) optimal basis —
    /// a handful of pivots instead of a phase-1 restart.
    #[default]
    Dual,
    /// The legacy path: violated rows get artificial columns and the next
    /// solve runs phase 1 over them.
    Phase1,
}

impl WarmStrategy {
    /// The strategy's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            WarmStrategy::Dual => "dual",
            WarmStrategy::Phase1 => "phase1",
        }
    }
}

impl fmt::Display for WarmStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WarmStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dual" => Ok(WarmStrategy::Dual),
            "phase1" => Ok(WarmStrategy::Phase1),
            other => Err(format!(
                "unknown warm-resolve strategy `{other}` (expected dual or phase1)"
            )),
        }
    }
}

/// Why a factorization operation declined; the core reacts by
/// refactorizing from pristine columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FactorError {
    /// The update/border pivot is too small to apply stably (the
    /// near-singular border guard lives here).
    UnstablePivot,
    /// The representation cannot absorb this change in place (LU row
    /// extension, eta-file overflow); rebuild at the next solve.
    NeedsRefactorization,
}

/// Hyper-sparse solves are attempted only at or above this dimension —
/// below it a dense scan is a handful of cache lines and the symbolic
/// bookkeeping costs more than it saves.
const HYPER_MIN_DIM: usize = 16;

/// Result-density threshold for the hyper-sparse triangular solves: a
/// solve is attempted hyper-sparse when the right-hand side's support is
/// at most `ρ·m` rows, and falls back to the dense scan once the live
/// support grows past `4ρ·m`.  Overridable via `CMA_HYPER_DENSITY`
/// (a fraction in `[0, 1]`; `0` disables the hyper-sparse paths).
fn hyper_density() -> f64 {
    static DENSITY: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *DENSITY.get_or_init(|| {
        std::env::var("CMA_HYPER_DENSITY")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|d| (0.0..=1.0).contains(d))
            .unwrap_or(0.15)
    })
}

/// Seed cap for a hyper-sparse attempt at dimension `m`.
fn hyper_seed_cap(m: usize) -> usize {
    (hyper_density() * m as f64) as usize
}

/// Live-support cap before a hyper-sparse solve falls back to dense.
fn hyper_live_cap(m: usize) -> usize {
    ((4.0 * hyper_density()) * m as f64) as usize + 4
}

/// Sift-up push into a max-heap of `(key, step)` pairs kept in a plain
/// `Vec` so the buffer is reusable across solves.  Min-order stages push
/// `usize::MAX - key`.
fn heap_push(heap: &mut Vec<(usize, usize)>, item: (usize, usize)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if heap[p] < heap[i] {
            heap.swap(p, i);
            i = p;
        } else {
            break;
        }
    }
}

/// Pop the max `(key, step)` pair (see [`heap_push`]).
fn heap_pop(heap: &mut Vec<(usize, usize)>) -> Option<(usize, usize)> {
    let n = heap.len();
    if n == 0 {
        return None;
    }
    heap.swap(0, n - 1);
    let top = heap.pop();
    let n = heap.len();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut big = i;
        if l < n && heap[l] > heap[big] {
            big = l;
        }
        if r < n && heap[r] > heap[big] {
            big = r;
        }
        if big == i {
            break;
        }
        heap.swap(i, big);
        i = big;
    }
    top
}

/// Caller-owned scratch for the in-place kernel API.
///
/// One `KernelWs` carries everything a [`Factorization`] solve needs —
/// the right-hand side, the solution, the symbolic-DFS worklist, and
/// epoch-tagged marks — so a solve performs **zero heap allocation**
/// once the workspace has been sized for the basis dimension.  The
/// `SimplexCore` owns one workspace per concurrent solve role and
/// reuses them across every pivot of a solve.
///
/// Contract between loads and kernels:
/// * `rhs` is all-zero between calls; [`load_dense`](Self::load_dense)/
///   [`load_sparse`](Self::load_sparse)/[`load_unit`](Self::load_unit)
///   populate it plus `rhs_pattern`, and the kernel consumes it back to
///   all-zero.
/// * After a kernel returns, `sol` holds the solution; when `sparse` is
///   set, `pattern` lists a superset of its nonzero indices and `sol`
///   is exactly zero everywhere else.  The next kernel call clears it.
#[derive(Debug, Default)]
pub(crate) struct KernelWs {
    /// Right-hand side / mid-solve vector (row-indexed in ftran,
    /// position-indexed in btran).  All-zero between calls.
    pub(crate) rhs: Vec<f64>,
    /// Support of `rhs` (may contain duplicates or exact-zero entries).
    pub(crate) rhs_pattern: Vec<usize>,
    /// Whether `rhs_pattern` is valid; dense loads with wide support
    /// clear it so kernels skip straight to the dense path.
    pub(crate) rhs_sparse: bool,
    /// Solution vector (position-indexed in ftran, row-indexed in btran).
    pub(crate) sol: Vec<f64>,
    /// Superset of `sol`'s nonzero indices when `sparse`.
    pub(crate) pattern: Vec<usize>,
    /// Whether `pattern` describes `sol`; dense results leave it false.
    pub(crate) sparse: bool,
    /// Indices of `rhs` dirtied by the current solve (for O(support)
    /// re-zeroing instead of an O(m) clear).
    touched: Vec<usize>,
    /// Epoch-tagged marks over rows and positions/steps; bumping the
    /// epoch invalidates all marks in O(1).
    mark_row: Vec<u32>,
    mark_pos: Vec<u32>,
    epoch_row: u32,
    epoch_pos: u32,
    /// Reusable binary-heap buffer for the symbolic worklists.
    heap: Vec<(usize, usize)>,
    /// Disables the hyper-sparse paths for this workspace (kernel-bench
    /// baselines and agreement tests pin hyper against the dense scan).
    pub(crate) force_dense: bool,
    /// Dimension the buffers are sized for (high-water mark).
    sized_for: usize,
    /// Dimension of the solve that produced `sol` (for dense clears).
    dim: usize,
    /// Solves that completed on the hyper-sparse path.
    pub(crate) hyper_ftrans: u64,
    pub(crate) hyper_btrans: u64,
    /// Solves that ran (or fell back to) the dense scan in an LU kernel.
    pub(crate) dense_fallbacks: u64,
    /// Workspace growth events after the first sizing — the hot loop's
    /// allocation count, asserted zero in steady state by CI.
    pub(crate) kernel_allocs: u64,
}

impl KernelWs {
    /// Grows every buffer to dimension `m`; growth after the first
    /// sizing counts as a hot-path allocation.
    pub(crate) fn ensure(&mut self, m: usize) {
        if m > self.sized_for {
            if self.sized_for > 0 {
                self.kernel_allocs += 1;
            }
            self.rhs.resize(m, 0.0);
            self.sol.resize(m, 0.0);
            self.mark_row.resize(m, 0);
            self.mark_pos.resize(m, 0);
            self.rhs_pattern
                .reserve(m.saturating_sub(self.rhs_pattern.len()));
            self.pattern.reserve(m.saturating_sub(self.pattern.len()));
            self.touched.reserve(m.saturating_sub(self.touched.len()));
            self.heap.reserve(m.saturating_sub(self.heap.len()));
            self.sized_for = m;
        }
    }

    /// Loads a dense right-hand side, scanning its support.
    pub(crate) fn load_dense(&mut self, b: &[f64]) {
        self.ensure(b.len());
        self.rhs[..b.len()].copy_from_slice(b);
        self.rhs_pattern.clear();
        for (i, &v) in b.iter().enumerate() {
            if v != 0.0 {
                self.rhs_pattern.push(i);
            }
        }
        self.rhs_sparse = true;
    }

    /// Loads a sparse right-hand side given as `(index, value)` entries.
    pub(crate) fn load_sparse(&mut self, entries: &[(usize, f64)], m: usize) {
        self.ensure(m);
        self.rhs_pattern.clear();
        self.bump_row_epoch();
        for &(i, a) in entries {
            if a == 0.0 {
                continue;
            }
            if !self.row_marked(i) {
                self.mark_row_on(i);
                self.rhs_pattern.push(i);
            }
            self.rhs[i] += a;
        }
        self.rhs_sparse = true;
    }

    /// Loads the unit right-hand side `e_p`.
    pub(crate) fn load_unit(&mut self, p: usize, m: usize) {
        self.ensure(m);
        self.rhs[p] = 1.0;
        self.rhs_pattern.clear();
        self.rhs_pattern.push(p);
        self.rhs_sparse = true;
    }

    /// Kernel prologue: clears the previous solution's support and
    /// resets the per-solve scratch.  Kernels call this exactly once.
    fn begin(&mut self, m: usize) {
        self.ensure(m);
        if self.sparse {
            for idx in 0..self.pattern.len() {
                let i = self.pattern[idx];
                self.sol[i] = 0.0;
            }
        } else {
            self.sol[..self.dim].fill(0.0);
        }
        self.pattern.clear();
        self.sparse = true;
        self.touched.clear();
        self.heap.clear();
        self.dim = m;
        self.bump_row_epoch();
        self.bump_pos_epoch();
    }

    fn bump_row_epoch(&mut self) {
        if self.epoch_row == u32::MAX {
            self.mark_row.fill(0);
            self.epoch_row = 0;
        }
        self.epoch_row += 1;
    }

    fn bump_pos_epoch(&mut self) {
        if self.epoch_pos == u32::MAX {
            self.mark_pos.fill(0);
            self.epoch_pos = 0;
        }
        self.epoch_pos += 1;
    }

    fn row_marked(&self, i: usize) -> bool {
        self.mark_row[i] == self.epoch_row
    }

    fn mark_row_on(&mut self, i: usize) {
        self.mark_row[i] = self.epoch_row;
    }

    fn pos_marked(&self, i: usize) -> bool {
        self.mark_pos[i] == self.epoch_pos
    }

    fn mark_pos_on(&mut self, i: usize) {
        self.mark_pos[i] = self.epoch_pos;
    }

    /// Kernel epilogue for the RHS: restores the all-zero invariant,
    /// either via the touched list or an O(m) fill after a dense stage.
    fn consume_rhs(&mut self, dense: bool) {
        if dense {
            self.rhs[..self.dim].fill(0.0);
        } else {
            for idx in 0..self.rhs_pattern.len() {
                let i = self.rhs_pattern[idx];
                self.rhs[i] = 0.0;
            }
            for idx in 0..self.touched.len() {
                let i = self.touched[idx];
                self.rhs[i] = 0.0;
            }
        }
        self.rhs_pattern.clear();
        self.rhs_sparse = false;
    }

    /// Copies the solution out as a dense `Vec` (test/cold-path helper).
    pub(crate) fn sol_vec(&self) -> Vec<f64> {
        self.sol[..self.dim].to_vec()
    }

    /// Copies the solution into a caller-owned buffer (no allocation once
    /// the buffer has reached the solve dimension).
    pub(crate) fn copy_sol_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.sol[..self.dim]);
    }

    /// Squared Euclidean norm of the solution, walking only the nonzero
    /// pattern after a hyper-sparse solve.
    pub(crate) fn sol_norm_sq(&self) -> f64 {
        if self.sparse {
            self.pattern
                .iter()
                .map(|&i| self.sol[i] * self.sol[i])
                .sum()
        } else {
            self.sol[..self.dim].iter().map(|v| v * v).sum()
        }
    }

    /// The lifetime solve counters `(hyper_ftrans, hyper_btrans,
    /// dense_fallbacks, kernel_allocs)` — monotone; per-solve deltas are the
    /// caller's business (see `SimplexCore::snapshot_stats`).
    pub(crate) fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.hyper_ftrans,
            self.hyper_btrans,
            self.dense_fallbacks,
            self.kernel_allocs,
        )
    }
}

/// A basis factorization: everything the simplex core needs from `B`.
///
/// Vectors indexed "by row" run over constraint rows; vectors indexed "by
/// position" run over basis positions `0..m` (position `k` holds basic
/// column `basis[k]`).  Implementations must be deterministic — the same
/// call sequence yields bitwise-identical results (a backend contract
/// obligation) — and `Send + Sync` so sessions stay usable from the
/// parallel batch solver and the parallel partial pricer.
pub(crate) trait Factorization: Send + Sync {
    /// The kind this factorization implements.
    fn kind(&self) -> FactorKind;

    /// Solves `B·x = b` **in place**: the caller loads `b` by row into
    /// `ws` via [`KernelWs::load_dense`]/[`load_sparse`](KernelWs::load_sparse),
    /// and on return `ws.sol` holds `x` by basis position, with
    /// `ws.pattern` listing a superset of its nonzeros when `ws.sparse`.
    /// The RHS is consumed (`ws.rhs` returns to all-zero).  This is the
    /// hot-path kernel: it must not allocate once `ws` is sized.
    fn ftran_ws(&self, ws: &mut KernelWs);

    /// Solves `Bᵀ·y = c` **in place**: `c` by basis position loaded into
    /// `ws`, `y` by row in `ws.sol` on return (same contract as
    /// [`ftran_ws`](Self::ftran_ws)).
    fn btran_ws(&self, ws: &mut KernelWs);

    /// Row `p` of `B⁻¹` (row-indexed) into `ws.sol` — needed once per
    /// pivot for the devex weight and dual-price updates.  The default
    /// solves `Bᵀy = e_p`; representations that store the inverse
    /// explicitly override it with a copy.
    fn inverse_row_ws(&self, p: usize, ws: &mut KernelWs) {
        ws.load_unit(p, self.dim());
        self.btran_ws(ws);
    }

    /// Allocating convenience over [`ftran_ws`](Self::ftran_ws) for
    /// tests and cold paths: `b` by row, result by basis position.
    /// (The hot loop uses the workspace kernels exclusively; these
    /// wrappers survive for the conformance matrix and bench baselines.)
    #[allow(dead_code)]
    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        let mut ws = KernelWs::default();
        ws.load_dense(b);
        ws.ensure(self.dim());
        self.ftran_ws(&mut ws);
        ws.dim = self.dim();
        ws.sol_vec()
    }

    /// Allocating convenience: [`ftran`](Self::ftran) for a sparse
    /// right-hand side given as `(row, value)` entries.
    #[allow(dead_code)]
    fn ftran_sparse(&self, entries: &[(usize, f64)]) -> Vec<f64> {
        let mut ws = KernelWs::default();
        ws.load_sparse(entries, self.dim());
        self.ftran_ws(&mut ws);
        ws.sol_vec()
    }

    /// Allocating convenience over [`btran_ws`](Self::btran_ws): `c` by
    /// basis position, result by row.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut ws = KernelWs::default();
        ws.load_dense(c);
        ws.ensure(self.dim());
        self.btran_ws(&mut ws);
        ws.dim = self.dim();
        ws.sol_vec()
    }

    /// Allocating convenience over [`inverse_row_ws`](Self::inverse_row_ws).
    #[allow(dead_code)]
    fn inverse_row(&self, p: usize) -> Vec<f64> {
        let mut ws = KernelWs::default();
        self.inverse_row_ws(p, &mut ws);
        ws.sol_vec()
    }

    /// Current dimension `m`.
    fn dim(&self) -> usize;

    /// Replaces the basic column at position `p`; `d = B⁻¹A_q` is the
    /// ftran'd entering column.  On `Err` the factorization is unchanged
    /// and the caller must refactorize before the next solve.
    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError>;

    /// Borders the factorization with a new row: `w` holds the row's
    /// coefficients at the old basic columns (by position) and `c` the
    /// coefficient of the new row's own basic column.  On `Err` the
    /// caller grows the basis bookkeeping anyway and refactorizes lazily.
    fn extend_row(&mut self, w: &[f64], c: f64) -> Result<(), FactorError>;

    /// Rebuilds from the pristine basis columns; returns `false` (leaving
    /// the previous factorization in place) when the basis is numerically
    /// singular.
    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool;

    /// Live eta vectors accumulated since the last refactorization
    /// (0 for representations without an eta file).
    fn eta_count(&self) -> usize {
        0
    }

    /// Cumulative count of `U` entries retired in place by Forrest–Tomlin
    /// column replacements over the factorization's lifetime — the growth a
    /// product-form eta file would have accumulated instead (0 for
    /// representations without in-place compaction).  Monotone; the core
    /// reads deltas into [`SolveStats::eta_compactions`](crate::SolveStats).
    fn compactions(&self) -> usize {
        0
    }
}

/// The explicit dense basis inverse (see the [module docs](self)).
///
/// `B⁻¹` is stored **flat row-major** — `flat[k*m + r]` is entry
/// `(position k, row r)` — so every kernel below is a unit-stride loop
/// over a contiguous panel that the autovectorizer turns into SIMD, and
/// the rank-one update's row operations run via `split_at_mut` without
/// cloning the pivot row.
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseInverse {
    m: usize,
    /// `flat[k*m + r]`: row `k` maps basis position `k`, column `r` maps
    /// constraint row `r`.
    flat: Vec<f64>,
}

impl DenseInverse {
    #[inline]
    fn row(&self, k: usize) -> &[f64] {
        &self.flat[k * self.m..(k + 1) * self.m]
    }
}

/// Rows accumulated per pass in the blocked dense btran: four basis
/// rows stream through one pass over `y`, quartering the store traffic.
const DENSE_BLOCK: usize = 4;

impl Factorization for DenseInverse {
    fn kind(&self) -> FactorKind {
        FactorKind::Dense
    }

    fn dim(&self) -> usize {
        self.m
    }

    fn inverse_row(&self, p: usize) -> Vec<f64> {
        self.row(p).to_vec()
    }

    fn inverse_row_ws(&self, p: usize, ws: &mut KernelWs) {
        ws.begin(self.m);
        ws.sol[..self.m].copy_from_slice(self.row(p));
        ws.sparse = false;
    }

    fn ftran_ws(&self, ws: &mut KernelWs) {
        let m = self.m;
        ws.begin(m);
        // x_k = row_k · b: contiguous dots.  With a narrow RHS support
        // the dot collapses to the product form over the entries.
        let narrow = ws.rhs_sparse && ws.rhs_pattern.len() * 4 < m;
        if narrow {
            for k in 0..m {
                let row = &self.flat[k * m..(k + 1) * m];
                let mut s = 0.0;
                for idx in 0..ws.rhs_pattern.len() {
                    let r = ws.rhs_pattern[idx];
                    s += row[r] * ws.rhs[r];
                }
                ws.sol[k] = s;
            }
        } else {
            for k in 0..m {
                let row = &self.flat[k * m..(k + 1) * m];
                ws.sol[k] = row.iter().zip(&ws.rhs[..m]).map(|(x, b)| x * b).sum();
            }
        }
        ws.sparse = false;
        ws.consume_rhs(!narrow);
    }

    fn btran_ws(&self, ws: &mut KernelWs) {
        let m = self.m;
        ws.begin(m);
        // y += c_k · row_k over nonzero c_k, blocked DENSE_BLOCK rows per
        // pass so `y` is loaded and stored once per block.
        let was_sparse = ws.rhs_sparse;
        if !was_sparse {
            ws.touched.clear();
            for k in 0..m {
                if ws.rhs[k] != 0.0 {
                    ws.touched.push(k);
                }
            }
        }
        {
            let nz: &[usize] = if was_sparse {
                &ws.rhs_pattern
            } else {
                &ws.touched
            };
            let rhs = &ws.rhs;
            let sol = &mut ws.sol;
            let mut b = 0;
            while b < nz.len() {
                let chunk = &nz[b..(b + DENSE_BLOCK).min(nz.len())];
                match *chunk {
                    [k0, k1, k2, k3] => {
                        let (c0, c1, c2, c3) = (rhs[k0], rhs[k1], rhs[k2], rhs[k3]);
                        let (r0, r1) = (self.row(k0), self.row(k1));
                        let (r2, r3) = (self.row(k2), self.row(k3));
                        for r in 0..m {
                            sol[r] += c0 * r0[r] + c1 * r1[r] + c2 * r2[r] + c3 * r3[r];
                        }
                    }
                    _ => {
                        for &k in chunk {
                            let ck = rhs[k];
                            for (yr, br) in sol[..m].iter_mut().zip(self.row(k)) {
                                *yr += ck * br;
                            }
                        }
                    }
                }
                b += DENSE_BLOCK;
            }
        }
        ws.sparse = false;
        ws.consume_rhs(!was_sparse);
    }

    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError> {
        let m = self.m;
        let dp = d[p];
        if dp.abs() < PIVOT_EPS {
            return Err(FactorError::UnstablePivot);
        }
        for x in &mut self.flat[p * m..(p + 1) * m] {
            *x /= dp;
        }
        // Row operations against the pivot row via disjoint flat slices —
        // no clone, every axpy contiguous.
        for i in 0..m {
            if i == p || d[i].abs() <= 1e-12 {
                continue;
            }
            let factor = d[i];
            let hi = i.max(p);
            let (head, tail) = self.flat.split_at_mut(hi * m);
            let (row_i, row_p) = if i > p {
                (&mut tail[..m], &head[p * m..(p + 1) * m])
            } else {
                (&mut head[i * m..(i + 1) * m][..], &tail[..m])
            };
            for (x, pr) in row_i.iter_mut().zip(row_p) {
                *x -= factor * pr;
            }
        }
        Ok(())
    }

    fn extend_row(&mut self, w: &[f64], c: f64) -> Result<(), FactorError> {
        // Near-singular border guard: a border pivot this small would
        // poison B⁻¹ with huge entries; decline and let the core rebuild
        // from pristine columns instead.
        if c.abs() < PIVOT_EPS || !c.is_finite() {
            return Err(FactorError::UnstablePivot);
        }
        // With M = [[B, 0], [w, c]] the inverse is
        // [[B⁻¹, 0], [-(w·B⁻¹)/c, 1/c]].  Cold path: reshape to the
        // (m+1)-stride layout in one fresh buffer.
        let m = self.m;
        let wb = self.btran(w);
        let stride = m + 1;
        let mut flat = vec![0.0; stride * stride];
        for k in 0..m {
            flat[k * stride..k * stride + m].copy_from_slice(self.row(k));
        }
        for (r, &x) in wb.iter().enumerate() {
            flat[m * stride + r] = -x / c;
        }
        flat[m * stride + m] = 1.0 / c;
        self.m = stride;
        self.flat = flat;
        Ok(())
    }

    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool {
        let stride = 2 * m;
        // Augmented [B | I], one flat allocation for cache-friendly sweeps.
        let mut work = vec![0.0; m * stride];
        for i in 0..m {
            work[i * stride + m + i] = 1.0;
        }
        for (k, &col) in basis.iter().enumerate() {
            cols.for_each(col, &mut |r, a| {
                work[r * stride + k] = a;
            });
        }
        for k in 0..m {
            let pivot_row = (k..m).max_by(|&a, &b| {
                work[a * stride + k]
                    .abs()
                    .partial_cmp(&work[b * stride + k].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(r) = pivot_row else { return m == 0 };
            if work[r * stride + k].abs() < SINGULAR_TOL {
                return false;
            }
            if r != k {
                for j in 0..stride {
                    work.swap(k * stride + j, r * stride + j);
                }
            }
            let pivot = work[k * stride + k];
            for x in &mut work[k * stride..(k + 1) * stride] {
                *x /= pivot;
            }
            for i in 0..m {
                if i != k {
                    let factor = work[i * stride + k];
                    if factor != 0.0 {
                        let (head, tail) = work.split_at_mut(k.max(i) * stride);
                        let (row_i, row_k) = if i > k {
                            (&mut tail[..stride], &head[k * stride..(k + 1) * stride])
                        } else {
                            (&mut head[i * stride..(i + 1) * stride][..], &tail[..stride])
                        };
                        // Skip the already-eliminated prefix: columns < k of
                        // row k are zero.
                        for (x, rk) in row_i[k..].iter_mut().zip(&row_k[k..]) {
                            *x -= factor * rk;
                        }
                    }
                }
            }
        }
        // B X = I solved column-wise: position k's row of the inverse is row
        // k of the right half, copied into the flat row-major layout.
        let mut flat = vec![0.0; m * m];
        for k in 0..m {
            flat[k * m..(k + 1) * m].copy_from_slice(&work[k * stride + m..(k + 1) * stride]);
        }
        self.m = m;
        self.flat = flat;
        true
    }
}

/// One Forrest–Tomlin row eta: the elimination of the pending row recorded
/// as `row[target] ← row[target] − Σ mult·row[src]`.  Solves apply the same
/// combination to the right-hand side (`v[target] -= Σ mult·v[src]` in
/// ftran, the transpose in btran).
#[derive(Debug, Clone)]
struct RowEta {
    /// Constraint row the pending step pivots on.
    target: usize,
    /// `(source constraint row, multiplier)` pairs, all sources unchanged by
    /// this update (so the combination may be applied as one batch).
    terms: Vec<(usize, f64)>,
}

/// Markowitz-ordered sparse LU with Forrest–Tomlin updates (see the
/// [module docs](self)).
///
/// The elimination is stored in "elimination form": step `t` pivots on
/// constraint row `pivot_row[t]` and basis position `pivot_col[t]`, with the
/// step's L multipliers (`lower[t]`, by row) and the pivot row's surviving U
/// entries (`upper[t]`, by basis position, pivot excluded) kept sparse.
///
/// The **L part is immutable** between refactorizations and is always
/// applied in original step order.  The **U part is mutable**: a
/// Forrest–Tomlin [`update`](Factorization::update) replaces one column of
/// `U` in place and moves its step to the end of [`order`](Self::order),
/// appending one [`RowEta`] that keeps `U` triangular *with respect to that
/// order*.  The factored operator is therefore
/// `B⁻¹ = U⁻¹ · R_K···R_1 · L⁻¹` with `R_i` the row etas in creation order.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactor {
    m: usize,
    pivot_row: Vec<usize>,
    pivot_col: Vec<usize>,
    upivot: Vec<f64>,
    lower: Vec<Vec<(usize, f64)>>,
    upper: Vec<Vec<(usize, f64)>>,
    /// Step indices in current elimination order (updates move steps to the
    /// end; `0..m` after a refactorization).
    order: Vec<usize>,
    /// Inverse of `order`: step index → position in `order`.
    order_pos: Vec<usize>,
    /// Basis position → step index (inverse of `pivot_col`).
    col_step: Vec<usize>,
    /// Constraint row → step index (inverse of `pivot_row`), for seeding
    /// the hyper-sparse worklists from an RHS support.
    row_step: Vec<usize>,
    /// Row → steps whose `lower` list touches that row (Lᵀ adjacency for
    /// the hyper-sparse btran).  L is immutable between refactorizations,
    /// so this is exact.
    ltrans: Vec<Vec<usize>>,
    /// Basis position → steps whose `upper` list carries an entry at that
    /// position (Uᵀ adjacency for the hyper-sparse ftran).  Maintained
    /// through Forrest–Tomlin updates as a **superset** — stale steps are
    /// sound because the numeric phase reads exact values — and rebuilt
    /// exactly at each refactorization.
    utrans: Vec<Vec<usize>>,
    /// Forrest–Tomlin row etas, in creation order.
    row_etas: Vec<RowEta>,
    /// Lifetime count of `U` entries retired by updates (see
    /// [`Factorization::compactions`]).
    compactions: usize,
}

impl Factorization for LuFactor {
    fn kind(&self) -> FactorKind {
        FactorKind::Lu
    }

    fn dim(&self) -> usize {
        self.m
    }

    fn ftran_ws(&self, ws: &mut KernelWs) {
        let m = self.m;
        ws.begin(m);
        let attempt = ws.rhs_sparse
            && !ws.force_dense
            && m >= HYPER_MIN_DIM
            && ws.rhs_pattern.len() <= hyper_seed_cap(m);
        let live_cap = hyper_live_cap(m);

        // --- L stage + row etas on v = ws.rhs (row-indexed) ---
        // Gilbert–Peierls: steps reachable from the RHS support, popped in
        // increasing step order (pushes are monotone: applying step t only
        // fills rows pivoting later), with a dense-scan fallback once the
        // live support crosses the density threshold.
        let mut v_dense = !attempt;
        if attempt {
            for idx in 0..ws.rhs_pattern.len() {
                let r = ws.rhs_pattern[idx];
                if !ws.row_marked(r) {
                    ws.mark_row_on(r);
                    ws.touched.push(r);
                    let t = self.row_step[r];
                    heap_push(&mut ws.heap, (usize::MAX - t, t));
                }
            }
            while let Some((_, t)) = heap_pop(&mut ws.heap) {
                if ws.touched.len() > live_cap {
                    // Steps < t are all applied; finish with the scan.
                    for tt in t..m {
                        let vr = ws.rhs[self.pivot_row[tt]];
                        if vr != 0.0 {
                            for &(i, l) in &self.lower[tt] {
                                ws.rhs[i] -= l * vr;
                            }
                        }
                    }
                    v_dense = true;
                    break;
                }
                let vr = ws.rhs[self.pivot_row[t]];
                if vr != 0.0 {
                    for &(i, l) in &self.lower[t] {
                        ws.rhs[i] -= l * vr;
                        if !ws.row_marked(i) {
                            ws.mark_row_on(i);
                            ws.touched.push(i);
                            let ti = self.row_step[i];
                            heap_push(&mut ws.heap, (usize::MAX - ti, ti));
                        }
                    }
                }
            }
        } else {
            for t in 0..m {
                let vr = ws.rhs[self.pivot_row[t]];
                if vr != 0.0 {
                    for &(i, l) in &self.lower[t] {
                        ws.rhs[i] -= l * vr;
                    }
                }
            }
        }
        // Forrest–Tomlin row etas in creation order; on the sparse path an
        // eta whose target and sources are all outside the support is a
        // no-op and newly filled targets join the support.
        for eta in &self.row_etas {
            let mut s = ws.rhs[eta.target];
            let mut live = s != 0.0;
            for &(src, mult) in &eta.terms {
                let vs = ws.rhs[src];
                if vs != 0.0 {
                    live = true;
                    s -= mult * vs;
                }
            }
            if live {
                ws.rhs[eta.target] = s;
                if !v_dense && !ws.row_marked(eta.target) {
                    ws.mark_row_on(eta.target);
                    ws.touched.push(eta.target);
                }
            }
        }

        // --- U back substitution into x = ws.sol (position-indexed) ---
        // Hyper path: steps popped in decreasing `order` position (every
        // dependency of a step sits later in the order, so it pops first);
        // propagation follows `utrans`, whose stale entries are harmless.
        let mut u_hyper = !v_dense && ws.touched.len() <= live_cap;
        if u_hyper {
            ws.bump_pos_epoch();
            ws.heap.clear();
            for idx in 0..ws.touched.len() {
                let r = ws.touched[idx];
                if ws.rhs[r] != 0.0 {
                    let t = self.row_step[r];
                    if !ws.pos_marked(t) {
                        ws.mark_pos_on(t);
                        heap_push(&mut ws.heap, (self.order_pos[t], t));
                    }
                }
            }
            while let Some((pos, t)) = heap_pop(&mut ws.heap) {
                if ws.pattern.len() > live_cap {
                    // Steps at positions > pos are done; scan the rest.
                    for posi in (0..=pos).rev() {
                        let tt = self.order[posi];
                        let mut s = ws.rhs[self.pivot_row[tt]];
                        for &(j, u) in &self.upper[tt] {
                            s -= u * ws.sol[j];
                        }
                        ws.sol[self.pivot_col[tt]] = s / self.upivot[tt];
                    }
                    u_hyper = false;
                    break;
                }
                let mut s = ws.rhs[self.pivot_row[t]];
                for &(j, u) in &self.upper[t] {
                    s -= u * ws.sol[j];
                }
                let x = s / self.upivot[t];
                let j0 = self.pivot_col[t];
                ws.sol[j0] = x;
                ws.pattern.push(j0);
                if x != 0.0 {
                    for &t2 in &self.utrans[j0] {
                        if self.order_pos[t2] < pos && !ws.pos_marked(t2) {
                            ws.mark_pos_on(t2);
                            heap_push(&mut ws.heap, (self.order_pos[t2], t2));
                        }
                    }
                }
            }
        } else {
            for &t in self.order.iter().rev() {
                let mut s = ws.rhs[self.pivot_row[t]];
                for &(j, u) in &self.upper[t] {
                    s -= u * ws.sol[j];
                }
                ws.sol[self.pivot_col[t]] = s / self.upivot[t];
            }
        }
        ws.sparse = u_hyper;
        if u_hyper {
            ws.hyper_ftrans += 1;
        } else {
            ws.dense_fallbacks += 1;
        }
        ws.consume_rhs(v_dense);
    }

    fn btran_ws(&self, ws: &mut KernelWs) {
        let m = self.m;
        ws.begin(m);
        let attempt = ws.rhs_sparse
            && !ws.force_dense
            && m >= HYPER_MIN_DIM
            && ws.rhs_pattern.len() <= hyper_seed_cap(m);
        let live_cap = hyper_live_cap(m);
        let mut hyper = attempt;

        // --- Uᵀ stage: v = ws.rhs (position-indexed), w = ws.sol (rows).
        // Forward over `order`; hyper path pops steps in increasing order
        // position (fill-in from `upper` lands at strictly later
        // positions, so pushes stay monotone).  `upper` is exact, so no
        // staleness care is needed here.
        if hyper {
            for idx in 0..ws.rhs_pattern.len() {
                let j = ws.rhs_pattern[idx];
                if !ws.pos_marked(j) {
                    ws.mark_pos_on(j);
                    ws.touched.push(j);
                    let t = self.col_step[j];
                    heap_push(&mut ws.heap, (usize::MAX - self.order_pos[t], t));
                }
            }
            while let Some((key, t)) = heap_pop(&mut ws.heap) {
                if ws.pattern.len() > live_cap {
                    // Positions before this one are done; scan the rest.
                    let pos = usize::MAX - key;
                    for posi in pos..m {
                        let tt = self.order[posi];
                        let wt = ws.rhs[self.pivot_col[tt]] / self.upivot[tt];
                        ws.sol[self.pivot_row[tt]] = wt;
                        if wt != 0.0 {
                            for &(j, u) in &self.upper[tt] {
                                ws.rhs[j] -= u * wt;
                            }
                        }
                    }
                    hyper = false;
                    break;
                }
                let wt = ws.rhs[self.pivot_col[t]] / self.upivot[t];
                if wt != 0.0 {
                    let r = self.pivot_row[t];
                    ws.sol[r] = wt;
                    ws.mark_row_on(r);
                    ws.pattern.push(r);
                    for &(j, u) in &self.upper[t] {
                        ws.rhs[j] -= u * wt;
                        if !ws.pos_marked(j) {
                            ws.mark_pos_on(j);
                            ws.touched.push(j);
                            let t2 = self.col_step[j];
                            heap_push(&mut ws.heap, (usize::MAX - self.order_pos[t2], t2));
                        }
                    }
                }
            }
        } else {
            for &t in self.order.iter() {
                let wt = ws.rhs[self.pivot_col[t]] / self.upivot[t];
                ws.sol[self.pivot_row[t]] = wt;
                if wt != 0.0 {
                    for &(j, u) in &self.upper[t] {
                        ws.rhs[j] -= u * wt;
                    }
                }
            }
        }
        ws.consume_rhs(!attempt || !hyper);

        // --- Transposed row etas, newest first: O(1) skip on a zero
        // target; fill joins the tracked support on the hyper path.
        for eta in self.row_etas.iter().rev() {
            let wt = ws.sol[eta.target];
            if wt != 0.0 {
                for &(src, mult) in &eta.terms {
                    ws.sol[src] -= mult * wt;
                    if hyper && !ws.row_marked(src) {
                        ws.mark_row_on(src);
                        ws.pattern.push(src);
                    }
                }
            }
        }

        // --- Lᵀ stage on w = ws.sol.  A step finalizes only its own
        // pivot row; readers of a nonzero row are its `ltrans` steps, all
        // strictly earlier, so a max-first pop order is monotone.  Rows
        // outside the worklist keep their (already final) values.
        if hyper {
            ws.bump_pos_epoch();
            ws.heap.clear();
            for idx in 0..ws.pattern.len() {
                let r = ws.pattern[idx];
                for &t in &self.ltrans[r] {
                    if !ws.pos_marked(t) {
                        ws.mark_pos_on(t);
                        heap_push(&mut ws.heap, (t, t));
                    }
                }
            }
            let mut processed = 0usize;
            while let Some((_, t)) = heap_pop(&mut ws.heap) {
                processed += 1;
                if processed + ws.pattern.len() > 2 * live_cap {
                    // Steps > t are done; finish with the dense scan.
                    for tt in (0..=t).rev() {
                        let mut s = ws.sol[self.pivot_row[tt]];
                        for &(i, l) in &self.lower[tt] {
                            s -= l * ws.sol[i];
                        }
                        ws.sol[self.pivot_row[tt]] = s;
                    }
                    hyper = false;
                    break;
                }
                let r = self.pivot_row[t];
                let mut s = ws.sol[r];
                for &(i, l) in &self.lower[t] {
                    s -= l * ws.sol[i];
                }
                ws.sol[r] = s;
                if s != 0.0 && !ws.row_marked(r) {
                    ws.mark_row_on(r);
                    ws.pattern.push(r);
                    for &t2 in &self.ltrans[r] {
                        if !ws.pos_marked(t2) {
                            ws.mark_pos_on(t2);
                            heap_push(&mut ws.heap, (t2, t2));
                        }
                    }
                }
            }
        } else {
            for t in (0..m).rev() {
                let mut s = ws.sol[self.pivot_row[t]];
                for &(i, l) in &self.lower[t] {
                    s -= l * ws.sol[i];
                }
                ws.sol[self.pivot_row[t]] = s;
            }
        }
        ws.sparse = hyper;
        if hyper {
            ws.hyper_btrans += 1;
        } else {
            ws.dense_fallbacks += 1;
        }
    }

    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError> {
        let dp = d[p];
        if dp.abs() < PIVOT_EPS || !dp.is_finite() {
            return Err(FactorError::UnstablePivot);
        }
        if self.row_etas.len() >= ETA_CAP {
            return Err(FactorError::NeedsRefactorization);
        }
        let m = self.m;
        let t_p = self.col_step[p];
        let r_p = self.pivot_row[t_p];
        let pos_p = self.order_pos[t_p];

        // Spike v = U·d by constraint row.  Since d = B⁻¹a_q and
        // B = L·R⁻¹·U, this equals R·L⁻¹·a_q — exactly the column that
        // must replace column `p` of U for the invariant to keep holding.
        let mut spike = vec![0.0; m];
        let mut spike_max = 0.0f64;
        for t in 0..m {
            let mut s = self.upivot[t] * d[self.pivot_col[t]];
            for &(j, u) in &self.upper[t] {
                s += u * d[j];
            }
            if s.abs() <= DROP_TOL {
                s = 0.0;
            }
            spike[self.pivot_row[t]] = s;
            spike_max = spike_max.max(s.abs());
        }

        // With column `p` replaced and step `t_p` moved to the end of the
        // elimination order, only the old row of step `t_p` breaks
        // triangularity: its surviving entries now sit below the diagonal.
        // Dry-run its elimination (nothing mutated yet, so any decline
        // leaves the factorization untouched), accumulating the row eta.
        use std::collections::BTreeMap;
        let mut pending: BTreeMap<usize, f64> = self.upper[t_p]
            .iter()
            .filter(|&&(j, _)| j != p)
            .copied()
            .collect();
        let mut pend_p = spike[r_p];
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for pos in pos_p + 1..m {
            let s = self.order[pos];
            let Some(u) = pending.remove(&self.pivot_col[s]) else {
                continue;
            };
            if u.abs() <= DROP_TOL {
                continue;
            }
            let mult = u / self.upivot[s];
            terms.push((self.pivot_row[s], mult));
            if terms.len() > FT_FILL_CAP {
                return Err(FactorError::NeedsRefactorization);
            }
            for &(j2, u2) in &self.upper[s] {
                if j2 == p {
                    continue;
                }
                let e = pending.entry(j2).or_insert(0.0);
                *e -= mult * u2;
                if e.abs() <= DROP_TOL {
                    pending.remove(&j2);
                }
            }
            // Row `pivot_row[s]`'s entry in the replaced column is the
            // spike value, kept out of `pending` and tracked separately.
            pend_p -= mult * spike[self.pivot_row[s]];
        }
        debug_assert!(
            pending.is_empty(),
            "pending row should eliminate completely"
        );
        let new_diag = pend_p;
        if new_diag.abs() < FT_STAB_TOL * spike_max || new_diag.abs() < SINGULAR_TOL {
            return Err(FactorError::UnstablePivot);
        }

        // Commit.  Replace column `p` of U with the spike (retired entries
        // are the growth a product-form eta file would have kept).  The
        // Uᵀ adjacency for column `p` is rebuilt exactly here; removals
        // elsewhere leave stale `utrans` entries, which the hyper-sparse
        // solves tolerate as a superset.
        self.utrans[p].clear();
        for t in 0..m {
            if let Some(idx) = self.upper[t].iter().position(|&(j, _)| j == p) {
                self.upper[t].swap_remove(idx);
                self.compactions += 1;
            }
            if t != t_p {
                let sv = spike[self.pivot_row[t]];
                if sv != 0.0 {
                    self.upper[t].push((p, sv));
                    self.utrans[p].push(t);
                }
            }
        }
        // ...retire the eliminated row, move its step to the end of the
        // elimination order, and record the row eta for solves.
        self.compactions += self.upper[t_p].len();
        self.upper[t_p].clear();
        self.upivot[t_p] = new_diag;
        self.order.remove(pos_p);
        self.order.push(t_p);
        for (pos, &t) in self.order.iter().enumerate().skip(pos_p) {
            self.order_pos[t] = pos;
        }
        if !terms.is_empty() {
            self.row_etas.push(RowEta { target: r_p, terms });
        }
        Ok(())
    }

    fn extend_row(&mut self, _w: &[f64], _c: f64) -> Result<(), FactorError> {
        // Growing the LU in place is not worth its complexity: the core
        // keeps the basic values current itself and refactorizes lazily at
        // the next solve, amortizing any number of appended rows into one
        // rebuild.
        Err(FactorError::NeedsRefactorization)
    }

    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool {
        use std::collections::{BTreeMap, BTreeSet};

        // Active working matrix, column-major with a row→columns index so
        // both Markowitz counts are maintainable.  BTree containers keep the
        // iteration order — and with it the pivot sequence — deterministic.
        let mut col: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); m];
        let mut row_cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
        for (k, &c) in basis.iter().enumerate() {
            cols.for_each(c, &mut |r, a| {
                if a != 0.0 {
                    *col[k].entry(r).or_insert(0.0) += a;
                    row_cols[r].insert(k);
                }
            });
        }
        let mut col_active = vec![true; m];
        let mut pivot_row = Vec::with_capacity(m);
        let mut pivot_col = Vec::with_capacity(m);
        let mut upivot = Vec::with_capacity(m);
        let mut lower: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);

        for _step in 0..m {
            // Markowitz pivot search: minimize (rowcount−1)·(colcount−1)
            // among entries above the stability threshold of their column.
            let mut best: Option<(usize, usize, usize, f64)> = None; // (score, r, k, |v|)
            for (k, active) in col_active.iter().enumerate() {
                if !active {
                    continue;
                }
                let cc = col[k].len();
                let colmax = col[k].values().fold(0.0f64, |acc, v| acc.max(v.abs()));
                if cc == 0 || colmax < SINGULAR_TOL {
                    return false; // structurally or numerically singular
                }
                for (&r, &v) in &col[k] {
                    let va = v.abs();
                    if va < LU_THRESHOLD * colmax || va < SINGULAR_TOL {
                        continue;
                    }
                    let score = (row_cols[r].len() - 1) * (cc - 1);
                    let better = match best {
                        None => true,
                        Some((bs, _, _, bv)) => score < bs || (score == bs && va > bv),
                    };
                    if better {
                        best = Some((score, r, k, va));
                    }
                }
                if matches!(best, Some((0, ..))) {
                    break; // a fill-free pivot cannot be beaten
                }
            }
            let Some((_, pr, pk, _)) = best else {
                return false;
            };
            let pivot = col[pk][&pr];
            // Snapshot the pivot row (U) and pivot column (L multipliers).
            let urow: Vec<(usize, f64)> = row_cols[pr]
                .iter()
                .filter(|&&j| j != pk)
                .map(|&j| (j, col[j][&pr]))
                .collect();
            let lcol: Vec<(usize, f64)> = col[pk]
                .iter()
                .filter(|&(&i, _)| i != pr)
                .map(|(&i, &v)| (i, v / pivot))
                .collect();
            // Eliminate: col_j ← col_j − (a_rj / pivot-scaled) updates.
            for &(j, urj) in &urow {
                for &(i, l) in &lcol {
                    let e = col[j].entry(i).or_insert(0.0);
                    *e -= l * urj;
                    if e.abs() < DROP_TOL {
                        col[j].remove(&i);
                        row_cols[i].remove(&j);
                    } else {
                        row_cols[i].insert(j);
                    }
                }
                col[j].remove(&pr);
            }
            // Deactivate the pivot row and column.
            for (&i, _) in col[pk].iter() {
                row_cols[i].remove(&pk);
            }
            col[pk].clear();
            row_cols[pr].clear();
            col_active[pk] = false;
            pivot_row.push(pr);
            pivot_col.push(pk);
            upivot.push(pivot);
            lower.push(lcol);
            upper.push(urow);
        }

        let mut col_step = vec![0usize; m];
        let mut row_step = vec![0usize; m];
        for (t, &k) in pivot_col.iter().enumerate() {
            col_step[k] = t;
        }
        for (t, &r) in pivot_row.iter().enumerate() {
            row_step[r] = t;
        }
        // Transpose adjacencies for the hyper-sparse solves: exact at
        // refactorization time (updates keep `utrans` a sound superset).
        let mut ltrans: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (t, lcol) in lower.iter().enumerate() {
            for &(i, _) in lcol {
                ltrans[i].push(t);
            }
        }
        let mut utrans: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (t, urow) in upper.iter().enumerate() {
            for &(j, _) in urow {
                utrans[j].push(t);
            }
        }
        self.m = m;
        self.pivot_row = pivot_row;
        self.pivot_col = pivot_col;
        self.upivot = upivot;
        self.lower = lower;
        self.upper = upper;
        self.order = (0..m).collect();
        self.order_pos = (0..m).collect();
        self.col_step = col_step;
        self.row_step = row_step;
        self.ltrans = ltrans;
        self.utrans = utrans;
        self.row_etas.clear();
        // `compactions` is a lifetime counter and deliberately survives.
        true
    }

    fn eta_count(&self) -> usize {
        self.row_etas.len()
    }

    fn compactions(&self) -> usize {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a ColumnStore holding the columns of a small matrix given
    /// column-major.
    fn store_from(columns: &[&[(usize, f64)]]) -> ColumnStore {
        let mut cols = ColumnStore::new(false);
        for entries in columns {
            let j = cols.push_col();
            for &(r, v) in *entries {
                cols.push_entry(j, r, v);
            }
        }
        cols
    }

    fn assert_vec_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    /// A 3×3 basis with known inverse, factored both ways: ftran/btran must
    /// agree between DenseInverse and LuFactor, before and after an update.
    #[test]
    fn lu_matches_dense_inverse_on_a_small_basis() {
        // B = [[2,0,1],[0,1,0],[1,0,1]] (columns listed column-major).
        let cols = store_from(&[
            &[(0, 2.0), (2, 1.0)],
            &[(1, 1.0)],
            &[(0, 1.0), (2, 1.0)],
            // A spare column to pivot in: A_3 = (1, 1, 0).
            &[(0, 1.0), (1, 1.0)],
        ]);
        let basis = [0usize, 1, 2];
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(dense.refactorize(3, &basis, &cols));
        assert!(lu.refactorize(3, &basis, &cols));
        assert_eq!(lu.eta_count(), 0);

        let b = [3.0, -1.0, 2.0];
        assert_vec_close(&dense.ftran(&b), &lu.ftran(&b));
        let c = [1.0, 2.0, -0.5];
        assert_vec_close(&dense.btran(&c), &lu.btran(&c));

        // Replace basis position 0 by the spare column and compare again.
        let mut a3 = vec![0.0; 3];
        cols.for_each(3, &mut |r, v| a3[r] += v);
        let d_dense = dense.ftran(&a3);
        let d_lu = lu.ftran(&a3);
        assert_vec_close(&d_dense, &d_lu);
        dense.update(0, &d_dense).unwrap();
        lu.update(0, &d_lu).unwrap();
        // A Forrest–Tomlin update keeps U compact: at most one row eta.
        assert!(lu.eta_count() <= 1);
        assert_vec_close(&dense.ftran(&b), &lu.ftran(&b));
        assert_vec_close(&dense.btran(&c), &lu.btran(&c));
    }

    /// A 5×5 circulant basis driven through a pivot sequence: after every
    /// Forrest–Tomlin update the factorization must agree with the dense
    /// inverse, and at the end with a from-scratch refactorization of the
    /// final basis.
    #[test]
    fn ft_updates_match_refactorize_from_scratch() {
        // Basis columns B_k = e_k + 0.5·e_{k+1 mod 5}; spares 5..9 mix rows.
        let cols = store_from(&[
            &[(0, 1.0), (1, 0.5)],
            &[(1, 1.0), (2, 0.5)],
            &[(2, 1.0), (3, 0.5)],
            &[(3, 1.0), (4, 0.5)],
            &[(4, 1.0), (0, 0.5)],
            &[(0, 1.0), (2, 1.0), (4, -1.0)],
            &[(1, 2.0), (3, -0.5)],
            &[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)],
            &[(2, -1.0), (4, 2.0)],
        ]);
        let mut basis = vec![0usize, 1, 2, 3, 4];
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(dense.refactorize(5, &basis, &cols));
        assert!(lu.refactorize(5, &basis, &cols));

        let probes: [[f64; 5]; 2] = [[1.0, -2.0, 0.5, 3.0, -1.0], [0.0, 1.0, 0.0, -1.0, 2.0]];
        for (pos, col) in [(0usize, 5usize), (2, 6), (4, 7), (1, 8)] {
            let mut a = vec![0.0; 5];
            cols.for_each(col, &mut |r, v| a[r] += v);
            let d = lu.ftran(&a);
            assert_vec_close(&dense.ftran(&a), &d);
            dense.update(pos, &d).unwrap();
            lu.update(pos, &d).unwrap();
            basis[pos] = col;
            for probe in &probes {
                assert_vec_close(&dense.ftran(probe), &lu.ftran(probe));
                assert_vec_close(&dense.btran(probe), &lu.btran(probe));
            }
        }
        // The eta file stays far below one eta per pivot's worth of fill,
        // and the retired-entry counter has seen real compaction.
        assert!(lu.eta_count() <= 4);
        assert!(lu.compactions() > 0);

        // Refactorize a fresh factorization on the final basis: the updated
        // one must solve identically (within roundoff).
        let mut fresh = LuFactor::default();
        assert!(fresh.refactorize(5, &basis, &cols));
        assert_eq!(fresh.eta_count(), 0);
        for probe in &probes {
            assert_vec_close(&fresh.ftran(probe), &lu.ftran(probe));
            assert_vec_close(&fresh.btran(probe), &lu.btran(probe));
        }
        // Refactorizing the live factorization clears its eta file but not
        // the lifetime compaction counter.
        let before = lu.compactions();
        assert!(lu.refactorize(5, &basis, &cols));
        assert_eq!(lu.eta_count(), 0);
        assert_eq!(lu.compactions(), before);
    }

    proptest::proptest! {
        /// Random pivot sequences: a diagonally dominant basis driven through
        /// arbitrary Forrest–Tomlin updates (refactorizing whenever an update
        /// declines, exactly as the simplex core does) must agree with the
        /// dense inverse after every pivot and with a from-scratch
        /// refactorization of the final basis at the end.
        #[test]
        fn prop_ft_updates_match_refactorize_after_random_pivots(
            m in 3usize..7,
            off in proptest::collection::vec((-0.45f64..0.45, -0.45f64..0.45), 12..13),
            pivots in proptest::collection::vec((0usize..6, 0usize..12), 1..10),
        ) {
            // Base columns B_k = (2+a)·e_k + b·e_{k+1 mod m}; spare pool of
            // 12 columns with the same shape shifted, so every replacement
            // keeps the basis comfortably nonsingular.
            let mut cols = ColumnStore::new(false);
            for k in 0..m {
                let (a, b) = off[k % off.len()];
                let j = cols.push_col();
                cols.push_entry(j, k, 2.0 + a);
                cols.push_entry(j, (k + 1) % m, b);
            }
            for (s, &(a, b)) in off.iter().enumerate() {
                let j = cols.push_col();
                cols.push_entry(j, s % m, 2.5 + a);
                cols.push_entry(j, (s + 2) % m, 0.5 + b);
            }
            let mut basis: Vec<usize> = (0..m).collect();
            let mut dense = DenseInverse::default();
            let mut lu = LuFactor::default();
            proptest::prop_assert!(dense.refactorize(m, &basis, &cols));
            proptest::prop_assert!(lu.refactorize(m, &basis, &cols));

            let probe: Vec<f64> = (0..m).map(|i| 1.0 - 0.5 * i as f64).collect();
            for &(pos, spare) in &pivots {
                let (pos, col) = (pos % m, m + spare);
                let mut a = vec![0.0; m];
                cols.for_each(col, &mut |r, v| a[r] += v);
                let d = lu.ftran(&a);
                for (x, y) in dense.ftran(&a).iter().zip(&d) {
                    proptest::prop_assert!((x - y).abs() < 1e-8);
                }
                // Mirror the solver contract: a declined update on either
                // side refactorizes both on the *old* basis and retries the
                // pivot from pristine factors.
                if lu.update(pos, &d).is_err() || dense.update(pos, &d).is_err() {
                    proptest::prop_assert!(dense.refactorize(m, &basis, &cols));
                    proptest::prop_assert!(lu.refactorize(m, &basis, &cols));
                    let d = lu.ftran(&a);
                    if lu.update(pos, &d).is_err() {
                        continue; // genuinely unstable pivot: skip it
                    }
                    dense.update(pos, &dense.ftran(&a)).unwrap();
                }
                basis[pos] = col;
                for (x, y) in dense.ftran(&probe).iter().zip(&lu.ftran(&probe)) {
                    proptest::prop_assert!((x - y).abs() < 1e-8);
                }
                for (x, y) in dense.btran(&probe).iter().zip(&lu.btran(&probe)) {
                    proptest::prop_assert!((x - y).abs() < 1e-8);
                }
            }

            let mut fresh = LuFactor::default();
            proptest::prop_assert!(fresh.refactorize(m, &basis, &cols));
            proptest::prop_assert_eq!(fresh.eta_count(), 0);
            for (x, y) in fresh.ftran(&probe).iter().zip(&lu.ftran(&probe)) {
                proptest::prop_assert!((x - y).abs() < 1e-8);
            }
            for (x, y) in fresh.btran(&probe).iter().zip(&lu.btran(&probe)) {
                proptest::prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }

    /// A declined update must leave the factorization fully usable.
    #[test]
    fn ft_decline_leaves_factorization_intact() {
        let cols = store_from(&[
            &[(0, 1.0)],
            &[(1, 1.0)],
            // Entering column nearly parallel to the departing one: the
            // replacement pivot is ~0 and the update must decline.
            &[(0, 1e-10), (1, 1.0)],
        ]);
        let mut lu = LuFactor::default();
        assert!(lu.refactorize(2, &[0, 1], &cols));
        let mut a = vec![0.0; 2];
        cols.for_each(2, &mut |r, v| a[r] += v);
        let d = lu.ftran(&a);
        assert_eq!(lu.update(0, &d), Err(FactorError::UnstablePivot));
        // Still solves for the *old* basis.
        let b = [3.0, -4.0];
        assert_vec_close(&lu.ftran(&b), &b);
        assert_vec_close(&lu.btran(&b), &b);
        assert_eq!(lu.eta_count(), 0);
    }

    #[test]
    fn singular_bases_are_rejected_by_both() {
        // Two identical columns: singular.
        let cols = store_from(&[&[(0, 1.0), (1, 2.0)], &[(0, 1.0), (1, 2.0)]]);
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(!dense.refactorize(2, &[0, 1], &cols));
        assert!(!lu.refactorize(2, &[0, 1], &cols));
    }

    #[test]
    fn dense_border_guard_declines_tiny_pivots() {
        let cols = store_from(&[&[(0, 1.0)]]);
        let mut dense = DenseInverse::default();
        assert!(dense.refactorize(1, &[0], &cols));
        assert_eq!(
            dense.extend_row(&[1.0], 1e-12),
            Err(FactorError::UnstablePivot)
        );
        // A healthy border is accepted and grows the dimension.
        assert!(dense.extend_row(&[1.0], 1.0).is_ok());
        assert_eq!(dense.ftran(&[1.0, 0.0]).len(), 2);
    }

    /// Builds the banded circulant basis `B_k = a·e_k + b·e_{k+1 mod m}`
    /// at a dimension large enough to engage the hyper-sparse paths.
    fn circulant(m: usize) -> (ColumnStore, Vec<usize>) {
        let mut cols = ColumnStore::new(false);
        for k in 0..m {
            let j = cols.push_col();
            cols.push_entry(j, k, 2.0 + 0.01 * k as f64);
            cols.push_entry(j, (k + 1) % m, 0.5 - 0.002 * k as f64);
        }
        // Spare columns 3 entries wide, to pivot in.
        for s in 0..m {
            let j = cols.push_col();
            cols.push_entry(j, s, 1.5 + 0.01 * s as f64);
            cols.push_entry(j, (s + 3) % m, -0.7);
            cols.push_entry(j, (s + 7) % m, 0.3);
        }
        (cols, (0..m).collect())
    }

    /// The hyper-sparse LU ftran/btran must agree with the dense
    /// reference kernels to 1e-9 on unit and sparse right-hand sides,
    /// before and after Forrest–Tomlin updates, and must report
    /// hyper-sparse completions with zero workspace growth after sizing.
    #[test]
    fn hyper_sparse_solves_match_dense_reference() {
        let m = 48;
        assert!(m >= HYPER_MIN_DIM);
        let (cols, mut basis) = circulant(m);
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(dense.refactorize(m, &basis, &cols));
        assert!(lu.refactorize(m, &basis, &cols));

        let mut ws = KernelWs::default();
        ws.ensure(m);
        let sized_allocs = ws.kernel_allocs;

        let check_all = |lu: &LuFactor, dense: &DenseInverse, ws: &mut KernelWs| {
            for p in [0usize, 5, m / 2, m - 1] {
                // ftran on the unit row RHS e_p.
                ws.load_unit(p, m);
                lu.ftran_ws(ws);
                let mut e = vec![0.0; m];
                e[p] = 1.0;
                assert_vec_close(&ws.sol_vec(), &dense.ftran(&e));
                if ws.sparse {
                    // Pattern superset contract: zeros outside it.
                    let mut inpat = vec![false; m];
                    for &j in &ws.pattern {
                        inpat[j] = true;
                    }
                    for (j, &x) in ws.sol[..m].iter().enumerate() {
                        assert!(inpat[j] || x == 0.0, "sol[{j}]={x} outside pattern");
                    }
                }
                // btran on e_p (inverse row).
                lu.inverse_row_ws(p, ws);
                assert_vec_close(&ws.sol_vec(), &dense.inverse_row(p));
            }
            // A 3-entry sparse RHS through both directions.
            let entries = [(1usize, 0.7), (m / 2, -1.3), (m - 2, 0.25)];
            ws.load_sparse(&entries, m);
            lu.ftran_ws(ws);
            assert_vec_close(&ws.sol_vec(), &dense.ftran_sparse(&entries));
            ws.load_sparse(&entries, m);
            lu.btran_ws(ws);
            let mut c = vec![0.0; m];
            for &(i, a) in &entries {
                c[i] += a;
            }
            assert_vec_close(&ws.sol_vec(), &dense.btran(&c));
        };

        check_all(&lu, &dense, &mut ws);
        assert!(ws.hyper_ftrans > 0, "hyper ftran path never engaged");
        assert!(ws.hyper_btrans > 0, "hyper btran path never engaged");

        // Drive a pivot sequence through both factorizations (spares are
        // wider, so updates exercise utrans maintenance + row etas).
        for (pos, spare) in [(0usize, 0usize), (11, 4), (30, 9), (m - 1, 2)] {
            let col = m + spare;
            let mut a = vec![0.0; m];
            cols.for_each(col, &mut |r, v| a[r] += v);
            let d = lu.ftran(&a);
            assert_vec_close(&dense.ftran(&a), &d);
            // Mirror the solver contract: a declined update refactorizes
            // both sides on the old basis and retries from pristine factors.
            if lu.update(pos, &d).is_err() || dense.update(pos, &d).is_err() {
                assert!(dense.refactorize(m, &basis, &cols));
                assert!(lu.refactorize(m, &basis, &cols));
                let d = lu.ftran(&a);
                if lu.update(pos, &d).is_err() {
                    continue;
                }
                dense.update(pos, &dense.ftran(&a)).unwrap();
            }
            basis[pos] = col;
        }
        check_all(&lu, &dense, &mut ws);

        // Zero-allocation contract: the workspace never grew past its
        // initial sizing across every solve above.
        assert_eq!(ws.kernel_allocs, sized_allocs);

        // And a refactorized-from-scratch LU still agrees.
        let mut fresh = LuFactor::default();
        assert!(fresh.refactorize(m, &basis, &cols));
        check_all(&fresh, &dense, &mut ws);
    }

    proptest::proptest! {
        /// Random sparse RHS + random pivot sequences at hyper-engaging
        /// dimensions: the hyper-sparse solves must match the dense
        /// inverse within 1e-9.
        #[test]
        fn prop_hyper_sparse_agrees_with_dense_reference(
            m in 20usize..40,
            rhs in proptest::collection::vec((0usize..40, -2.0f64..2.0), 1..4),
            pivots in proptest::collection::vec((0usize..40, 0usize..40), 0..6),
        ) {
            let (cols, mut basis) = circulant(m);
            let mut dense = DenseInverse::default();
            let mut lu = LuFactor::default();
            proptest::prop_assert!(dense.refactorize(m, &basis, &cols));
            proptest::prop_assert!(lu.refactorize(m, &basis, &cols));
            for &(pos, spare) in &pivots {
                let (pos, col) = (pos % m, m + spare % m);
                let mut a = vec![0.0; m];
                cols.for_each(col, &mut |r, v| a[r] += v);
                let d = lu.ftran(&a);
                if lu.update(pos, &d).is_err() || dense.update(pos, &d).is_err() {
                    proptest::prop_assert!(dense.refactorize(m, &basis, &cols));
                    proptest::prop_assert!(lu.refactorize(m, &basis, &cols));
                    continue;
                }
                basis[pos] = col;
            }
            let entries: Vec<(usize, f64)> =
                rhs.iter().map(|&(r, v)| (r % m, v)).collect();
            let mut ws = KernelWs::default();
            let mut ws_dense = KernelWs {
                force_dense: true,
                ..KernelWs::default()
            };
            let mut c = vec![0.0; m];
            for &(i, a) in &entries {
                c[i] += a;
            }

            // The hyper-sparse path is pinned to the LU dense scan within
            // 1e-9 outright: same factors, same operation order, the
            // symbolic pass only skips exact zeros.
            ws.load_sparse(&entries, m);
            lu.ftran_ws(&mut ws);
            ws_dense.load_sparse(&entries, m);
            lu.ftran_ws(&mut ws_dense);
            for (&x, &y) in ws.sol_vec().iter().zip(&ws_dense.sol_vec()) {
                proptest::prop_assert!((x - y).abs() < 1e-9, "hyper ftran {x} vs scan {y}");
            }
            ws.load_sparse(&entries, m);
            lu.btran_ws(&mut ws);
            ws_dense.load_sparse(&entries, m);
            lu.btran_ws(&mut ws_dense);
            for (&x, &y) in ws.sol_vec().iter().zip(&ws_dense.sol_vec()) {
                proptest::prop_assert!((x - y).abs() < 1e-9, "hyper btran {x} vs scan {y}");
            }

            // Against scratch solves of the final basis — the conformance
            // bound: both the updated LU (either path) and the updated
            // dense inverse sit within 1e-6 of a fresh refactorization,
            // scaled by the solve's magnitude (update drift is exactly
            // what periodic refactorization exists to wash out).
            let mut fresh = LuFactor::default();
            proptest::prop_assert!(fresh.refactorize(m, &basis, &cols));
            for (label, reference) in [
                ("ftran", fresh.ftran_sparse(&entries)),
                ("btran", fresh.btran(&c)),
            ] {
                let scale = 1.0 + reference.iter().fold(0.0f64, |a, x| a.max(x.abs()));
                if label == "ftran" {
                    ws.load_sparse(&entries, m);
                    lu.ftran_ws(&mut ws);
                } else {
                    ws.load_sparse(&entries, m);
                    lu.btran_ws(&mut ws);
                }
                let other = if label == "ftran" {
                    dense.ftran_sparse(&entries)
                } else {
                    dense.btran(&c)
                };
                for ((&x, &y), &z) in ws.sol_vec().iter().zip(&reference).zip(&other) {
                    proptest::prop_assert!((x - y).abs() < 1e-6 * scale, "{label} {x} vs {y}");
                    proptest::prop_assert!((z - y).abs() < 1e-6 * scale, "{label} dense {z} vs {y}");
                }
            }
        }
    }

    #[test]
    fn kinds_round_trip_and_lu_declines_row_extension() {
        for kind in FactorKind::ALL {
            assert_eq!(kind.name().parse::<FactorKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("cholesky".parse::<FactorKind>().is_err());
        assert_eq!(FactorKind::default(), FactorKind::Dense);
        assert_eq!("dual".parse::<WarmStrategy>().unwrap(), WarmStrategy::Dual);
        assert_eq!(
            "phase1".parse::<WarmStrategy>().unwrap(),
            WarmStrategy::Phase1
        );
        assert!("warm".parse::<WarmStrategy>().is_err());
        assert_eq!(WarmStrategy::default().to_string(), "dual");

        let mut lu = LuFactor::default();
        let cols = store_from(&[&[(0, 1.0)]]);
        assert!(lu.refactorize(1, &[0], &cols));
        assert_eq!(
            lu.extend_row(&[0.0], 1.0),
            Err(FactorError::NeedsRefactorization)
        );
    }
}
