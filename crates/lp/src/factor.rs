//! Basis factorizations behind the simplex core.
//!
//! Every revised-simplex iteration needs the basis matrix `B` applied in two
//! directions — `ftran` solves `B·d = a` (the pivot direction) and `btran`
//! solves `Bᵀ·y = c_B` (the dual prices) — plus a cheap rank-one `update`
//! when one basic column is replaced, and a from-scratch `refactorize` that
//! washes out the drift the updates accumulate.  The `Factorization` trait
//! is that seam: the `SimplexCore` iteration loop
//! is written against it, and the concrete linear algebra is pluggable per
//! solve through [`SolverTuning::factor`](crate::SolverTuning):
//!
//! * `DenseInverse` — the explicit dense `B⁻¹` the sparse backend carried
//!   before the seam existed: `O(m²)` solves, `O(m²)` Gauss-Jordan pivot
//!   updates, `O(m³)`-flavored refactorization.  Simple, and the reference
//!   the LU path is pinned against.
//! * `LuFactor` — a sparse LU elimination with **Markowitz ordering**
//!   (pivots chosen to minimize `(rowcount−1)·(colcount−1)` fill, under a
//!   threshold guard for stability) and **Forrest–Tomlin updates**: a basis
//!   change replaces the departing column of `U` in place with the spike
//!   `U·d`, moves its pivot step to the end of the elimination order, and
//!   eliminates the pending row into one sparse *row eta* — so `U` stays
//!   triangular and compact instead of growing an unbounded product-form
//!   eta file.  An update declines (forcing refactorization) only when the
//!   new pivot is unstable relative to the spike or the eliminated row
//!   fills beyond a threshold.  On the analysis's extremely sparse bases
//!   both solves and updates run in `O(nnz)` rather than `O(m²)`.
//!
//! Row extension (the warm `add_constraint` path) goes through
//! `Factorization::extend_row`: the dense inverse grows by a bordered
//! block — guarded against a near-singular border pivot — while the LU
//! factors decline (`FactorError::NeedsRefactorization`) and the core
//! refactorizes lazily at the next solve.

use std::fmt;
use std::str::FromStr;

use crate::core::ColumnStore;

/// Minimum magnitude accepted for an update or border pivot (matches the
/// solvers' pivot tolerance).
const PIVOT_EPS: f64 = 1e-7;
/// Below this magnitude a candidate LU pivot counts as structurally zero and
/// the basis as numerically singular.
const SINGULAR_TOL: f64 = 1e-11;
/// Threshold-pivoting factor: an LU pivot must be at least this fraction of
/// the largest entry in its column (the classic Markowitz/threshold
/// compromise between sparsity and stability).
const LU_THRESHOLD: f64 = 0.1;
/// Entries driven below this magnitude by elimination are dropped as exact
/// cancellations.
const DROP_TOL: f64 = 1e-13;
/// Hard cap on the row-eta file; reaching it forces a refactorization (the
/// core's periodic refresh normally keeps the file far shorter).
const ETA_CAP: usize = 512;
/// A Forrest–Tomlin update declines when the new diagonal is smaller than
/// this fraction of the spike's largest entry: the replacement would be
/// numerically dominated and the basis should be refactorized instead.
const FT_STAB_TOL: f64 = 1e-8;
/// A Forrest–Tomlin update declines when eliminating the pending row takes
/// more than this many row operations — the fill has outgrown what an
/// in-place update saves over refactorizing.
const FT_FILL_CAP: usize = 64;

/// Which basis factorization a solve uses (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorKind {
    /// Explicit dense `B⁻¹` (the pre-seam behavior; the reference).
    #[default]
    Dense,
    /// Markowitz-ordered sparse LU with product-form eta updates.
    Lu,
}

impl FactorKind {
    /// The kind's canonical CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            FactorKind::Dense => "dense",
            FactorKind::Lu => "lu",
        }
    }

    /// All kinds, for matrix tests and sweeps.
    pub const ALL: [FactorKind; 2] = [FactorKind::Dense, FactorKind::Lu];

    /// Instantiates an empty factorization of this kind.
    pub(crate) fn instantiate(self) -> Box<dyn Factorization> {
        match self {
            FactorKind::Dense => Box::new(DenseInverse::default()),
            FactorKind::Lu => Box::new(LuFactor::default()),
        }
    }
}

impl fmt::Display for FactorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FactorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(FactorKind::Dense),
            "lu" => Ok(FactorKind::Lu),
            other => Err(format!(
                "unknown factorization `{other}` (expected dense or lu)"
            )),
        }
    }
}

/// How a warm session re-solves after incremental rows left the basis
/// primal-infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStrategy {
    /// Dual-simplex pivots from the (still dual-feasible) optimal basis —
    /// a handful of pivots instead of a phase-1 restart.
    #[default]
    Dual,
    /// The legacy path: violated rows get artificial columns and the next
    /// solve runs phase 1 over them.
    Phase1,
}

impl WarmStrategy {
    /// The strategy's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            WarmStrategy::Dual => "dual",
            WarmStrategy::Phase1 => "phase1",
        }
    }
}

impl fmt::Display for WarmStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WarmStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dual" => Ok(WarmStrategy::Dual),
            "phase1" => Ok(WarmStrategy::Phase1),
            other => Err(format!(
                "unknown warm-resolve strategy `{other}` (expected dual or phase1)"
            )),
        }
    }
}

/// Why a factorization operation declined; the core reacts by
/// refactorizing from pristine columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FactorError {
    /// The update/border pivot is too small to apply stably (the
    /// near-singular border guard lives here).
    UnstablePivot,
    /// The representation cannot absorb this change in place (LU row
    /// extension, eta-file overflow); rebuild at the next solve.
    NeedsRefactorization,
}

/// A basis factorization: everything the simplex core needs from `B`.
///
/// Vectors indexed "by row" run over constraint rows; vectors indexed "by
/// position" run over basis positions `0..m` (position `k` holds basic
/// column `basis[k]`).  Implementations must be deterministic — the same
/// call sequence yields bitwise-identical results (a backend contract
/// obligation) — and `Send + Sync` so sessions stay usable from the
/// parallel batch solver and the parallel partial pricer.
pub(crate) trait Factorization: Send + Sync {
    /// The kind this factorization implements.
    fn kind(&self) -> FactorKind;

    /// Solves `B·x = b`: `b` by row, result by basis position
    /// (e.g. the pivot direction `d = B⁻¹A_j`, or `x_B = B⁻¹b`).
    fn ftran(&self, b: &[f64]) -> Vec<f64>;

    /// [`ftran`](Self::ftran) for a sparse right-hand side given as
    /// `(row, value)` entries — the shape of every pivot direction
    /// `d = B⁻¹A_j`.  The default scatters and solves densely;
    /// representations that store the inverse explicitly override it with
    /// an `O(m·nnz)` product, which is what keeps the dense configuration
    /// at its pre-seam per-pivot cost.
    fn ftran_sparse(&self, entries: &[(usize, f64)]) -> Vec<f64> {
        let mut b = vec![0.0; self.dim()];
        for &(r, a) in entries {
            b[r] += a;
        }
        self.ftran(&b)
    }

    /// Solves `Bᵀ·y = c`: `c` by basis position, result by row
    /// (e.g. dual prices `y = B⁻ᵀc_B`, or row `p` of `B⁻¹` from `e_p`).
    fn btran(&self, c: &[f64]) -> Vec<f64>;

    /// Current dimension `m`.
    fn dim(&self) -> usize;

    /// Row `p` of `B⁻¹` (row-indexed) — needed once per pivot for the devex
    /// weight and dual-price updates.  The default solves `Bᵀy = e_p`;
    /// representations that store the inverse explicitly override it with a
    /// copy, which is what keeps the dense configuration at its pre-seam
    /// per-pivot cost.
    fn inverse_row(&self, p: usize) -> Vec<f64> {
        let mut e = vec![0.0; self.dim()];
        e[p] = 1.0;
        self.btran(&e)
    }

    /// Replaces the basic column at position `p`; `d = B⁻¹A_q` is the
    /// ftran'd entering column.  On `Err` the factorization is unchanged
    /// and the caller must refactorize before the next solve.
    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError>;

    /// Borders the factorization with a new row: `w` holds the row's
    /// coefficients at the old basic columns (by position) and `c` the
    /// coefficient of the new row's own basic column.  On `Err` the
    /// caller grows the basis bookkeeping anyway and refactorizes lazily.
    fn extend_row(&mut self, w: &[f64], c: f64) -> Result<(), FactorError>;

    /// Rebuilds from the pristine basis columns; returns `false` (leaving
    /// the previous factorization in place) when the basis is numerically
    /// singular.
    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool;

    /// Live eta vectors accumulated since the last refactorization
    /// (0 for representations without an eta file).
    fn eta_count(&self) -> usize {
        0
    }

    /// Cumulative count of `U` entries retired in place by Forrest–Tomlin
    /// column replacements over the factorization's lifetime — the growth a
    /// product-form eta file would have accumulated instead (0 for
    /// representations without in-place compaction).  Monotone; the core
    /// reads deltas into [`SolveStats::eta_compactions`](crate::SolveStats).
    fn compactions(&self) -> usize {
        0
    }
}

/// The explicit dense basis inverse (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseInverse {
    /// `binv[k][r]` is entry `(k, r)` of `B⁻¹`: row `k` maps basis position
    /// `k`, column `r` maps constraint row `r`.
    binv: Vec<Vec<f64>>,
}

impl Factorization for DenseInverse {
    fn kind(&self) -> FactorKind {
        FactorKind::Dense
    }

    fn dim(&self) -> usize {
        self.binv.len()
    }

    fn inverse_row(&self, p: usize) -> Vec<f64> {
        self.binv[p].clone()
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)]) -> Vec<f64> {
        self.binv
            .iter()
            .map(|row| entries.iter().map(|&(r, a)| row[r] * a).sum())
            .collect()
    }

    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        self.binv
            .iter()
            .map(|row| row.iter().zip(b).map(|(x, bb)| x * bb).sum())
            .collect()
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.binv.len();
        let mut y = vec![0.0; m];
        for (k, row) in self.binv.iter().enumerate() {
            let ck = c[k];
            if ck != 0.0 {
                for (yr, br) in y.iter_mut().zip(row) {
                    *yr += ck * br;
                }
            }
        }
        y
    }

    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError> {
        let dp = d[p];
        if dp.abs() < PIVOT_EPS {
            return Err(FactorError::UnstablePivot);
        }
        for x in self.binv[p].iter_mut() {
            *x /= dp;
        }
        // One clone of the pivot row sidesteps the split borrow; the O(m)
        // copy is dominated by the O(m²) update below.
        let pivot_row = self.binv[p].clone();
        for (i, row) in self.binv.iter_mut().enumerate() {
            if i != p && d[i].abs() > 1e-12 {
                let factor = d[i];
                for (x, pr) in row.iter_mut().zip(&pivot_row) {
                    *x -= factor * pr;
                }
            }
        }
        Ok(())
    }

    fn extend_row(&mut self, w: &[f64], c: f64) -> Result<(), FactorError> {
        // Near-singular border guard: a border pivot this small would
        // poison B⁻¹ with huge entries; decline and let the core rebuild
        // from pristine columns instead.
        if c.abs() < PIVOT_EPS || !c.is_finite() {
            return Err(FactorError::UnstablePivot);
        }
        // With M = [[B, 0], [w, c]] the inverse is
        // [[B⁻¹, 0], [-(w·B⁻¹)/c, 1/c]].
        let m = self.binv.len();
        let wb = self.btran(w);
        let mut border = Vec::with_capacity(m + 1);
        border.extend(wb.iter().map(|&x| -x / c));
        border.push(1.0 / c);
        for row in self.binv.iter_mut() {
            row.push(0.0);
        }
        self.binv.push(border);
        Ok(())
    }

    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool {
        let stride = 2 * m;
        // Augmented [B | I], one flat allocation for cache-friendly sweeps.
        let mut work = vec![0.0; m * stride];
        for i in 0..m {
            work[i * stride + m + i] = 1.0;
        }
        for (k, &col) in basis.iter().enumerate() {
            cols.for_each(col, &mut |r, a| {
                work[r * stride + k] = a;
            });
        }
        for k in 0..m {
            let pivot_row = (k..m).max_by(|&a, &b| {
                work[a * stride + k]
                    .abs()
                    .partial_cmp(&work[b * stride + k].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(r) = pivot_row else { return m == 0 };
            if work[r * stride + k].abs() < SINGULAR_TOL {
                return false;
            }
            if r != k {
                for j in 0..stride {
                    work.swap(k * stride + j, r * stride + j);
                }
            }
            let pivot = work[k * stride + k];
            for x in &mut work[k * stride..(k + 1) * stride] {
                *x /= pivot;
            }
            for i in 0..m {
                if i != k {
                    let factor = work[i * stride + k];
                    if factor != 0.0 {
                        let (head, tail) = work.split_at_mut(k.max(i) * stride);
                        let (row_i, row_k) = if i > k {
                            (&mut tail[..stride], &head[k * stride..(k + 1) * stride])
                        } else {
                            (&mut head[i * stride..(i + 1) * stride][..], &tail[..stride])
                        };
                        // Skip the already-eliminated prefix: columns < k of
                        // row k are zero.
                        for (x, rk) in row_i[k..].iter_mut().zip(&row_k[k..]) {
                            *x -= factor * rk;
                        }
                    }
                }
            }
        }
        // B X = I solved column-wise: position k's row of the inverse is row
        // k of the right half.
        self.binv = (0..m)
            .map(|k| work[k * stride + m..(k + 1) * stride].to_vec())
            .collect();
        true
    }
}

/// One Forrest–Tomlin row eta: the elimination of the pending row recorded
/// as `row[target] ← row[target] − Σ mult·row[src]`.  Solves apply the same
/// combination to the right-hand side (`v[target] -= Σ mult·v[src]` in
/// ftran, the transpose in btran).
#[derive(Debug, Clone)]
struct RowEta {
    /// Constraint row the pending step pivots on.
    target: usize,
    /// `(source constraint row, multiplier)` pairs, all sources unchanged by
    /// this update (so the combination may be applied as one batch).
    terms: Vec<(usize, f64)>,
}

/// Markowitz-ordered sparse LU with Forrest–Tomlin updates (see the
/// [module docs](self)).
///
/// The elimination is stored in "elimination form": step `t` pivots on
/// constraint row `pivot_row[t]` and basis position `pivot_col[t]`, with the
/// step's L multipliers (`lower[t]`, by row) and the pivot row's surviving U
/// entries (`upper[t]`, by basis position, pivot excluded) kept sparse.
///
/// The **L part is immutable** between refactorizations and is always
/// applied in original step order.  The **U part is mutable**: a
/// Forrest–Tomlin [`update`](Factorization::update) replaces one column of
/// `U` in place and moves its step to the end of [`order`](Self::order),
/// appending one [`RowEta`] that keeps `U` triangular *with respect to that
/// order*.  The factored operator is therefore
/// `B⁻¹ = U⁻¹ · R_K···R_1 · L⁻¹` with `R_i` the row etas in creation order.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactor {
    m: usize,
    pivot_row: Vec<usize>,
    pivot_col: Vec<usize>,
    upivot: Vec<f64>,
    lower: Vec<Vec<(usize, f64)>>,
    upper: Vec<Vec<(usize, f64)>>,
    /// Step indices in current elimination order (updates move steps to the
    /// end; `0..m` after a refactorization).
    order: Vec<usize>,
    /// Inverse of `order`: step index → position in `order`.
    order_pos: Vec<usize>,
    /// Basis position → step index (inverse of `pivot_col`).
    col_step: Vec<usize>,
    /// Forrest–Tomlin row etas, in creation order.
    row_etas: Vec<RowEta>,
    /// Lifetime count of `U` entries retired by updates (see
    /// [`Factorization::compactions`]).
    compactions: usize,
}

impl Factorization for LuFactor {
    fn kind(&self) -> FactorKind {
        FactorKind::Lu
    }

    fn dim(&self) -> usize {
        self.m
    }

    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut v = b.to_vec();
        // Forward: apply L_t⁻¹ in original step order (L is immutable
        // between refactorizations — updates touch only U).
        for t in 0..m {
            let vr = v[self.pivot_row[t]];
            if vr != 0.0 {
                for &(i, l) in &self.lower[t] {
                    v[i] -= l * vr;
                }
            }
        }
        // Forrest–Tomlin row etas in creation order.
        for eta in &self.row_etas {
            let mut s = v[eta.target];
            for &(src, mult) in &eta.terms {
                s -= mult * v[src];
            }
            v[eta.target] = s;
        }
        // Back substitution on U, reverse elimination order (`order`, not
        // `0..m`: updates move replaced steps to the end).
        let mut x = vec![0.0; m];
        for &t in self.order.iter().rev() {
            let mut s = v[self.pivot_row[t]];
            for &(j, u) in &self.upper[t] {
                s -= u * x[j];
            }
            x[self.pivot_col[t]] = s / self.upivot[t];
        }
        x
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut v = c.to_vec();
        // Solve Uᵀ w = v (w by row): forward over `order`, since column
        // `pivot_col[t]` carries no U entry after step t in that order.
        let mut w = vec![0.0; m];
        for &t in self.order.iter() {
            let wt = v[self.pivot_col[t]] / self.upivot[t];
            w[self.pivot_row[t]] = wt;
            if wt != 0.0 {
                for &(j, u) in &self.upper[t] {
                    v[j] -= u * wt;
                }
            }
        }
        // Transposed row etas, newest first: Rᵀ scatters the target back
        // into its sources.
        for eta in self.row_etas.iter().rev() {
            let wt = w[eta.target];
            if wt != 0.0 {
                for &(src, mult) in &eta.terms {
                    w[src] -= mult * wt;
                }
            }
        }
        // Solve Lᵀ y = w: reverse, rows in `lower[t]` pivot later than t.
        for t in (0..m).rev() {
            let mut s = w[self.pivot_row[t]];
            for &(i, l) in &self.lower[t] {
                s -= l * w[i];
            }
            w[self.pivot_row[t]] = s;
        }
        w
    }

    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError> {
        let dp = d[p];
        if dp.abs() < PIVOT_EPS || !dp.is_finite() {
            return Err(FactorError::UnstablePivot);
        }
        if self.row_etas.len() >= ETA_CAP {
            return Err(FactorError::NeedsRefactorization);
        }
        let m = self.m;
        let t_p = self.col_step[p];
        let r_p = self.pivot_row[t_p];
        let pos_p = self.order_pos[t_p];

        // Spike v = U·d by constraint row.  Since d = B⁻¹a_q and
        // B = L·R⁻¹·U, this equals R·L⁻¹·a_q — exactly the column that
        // must replace column `p` of U for the invariant to keep holding.
        let mut spike = vec![0.0; m];
        let mut spike_max = 0.0f64;
        for t in 0..m {
            let mut s = self.upivot[t] * d[self.pivot_col[t]];
            for &(j, u) in &self.upper[t] {
                s += u * d[j];
            }
            if s.abs() <= DROP_TOL {
                s = 0.0;
            }
            spike[self.pivot_row[t]] = s;
            spike_max = spike_max.max(s.abs());
        }

        // With column `p` replaced and step `t_p` moved to the end of the
        // elimination order, only the old row of step `t_p` breaks
        // triangularity: its surviving entries now sit below the diagonal.
        // Dry-run its elimination (nothing mutated yet, so any decline
        // leaves the factorization untouched), accumulating the row eta.
        use std::collections::BTreeMap;
        let mut pending: BTreeMap<usize, f64> = self.upper[t_p]
            .iter()
            .filter(|&&(j, _)| j != p)
            .copied()
            .collect();
        let mut pend_p = spike[r_p];
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for pos in pos_p + 1..m {
            let s = self.order[pos];
            let Some(u) = pending.remove(&self.pivot_col[s]) else {
                continue;
            };
            if u.abs() <= DROP_TOL {
                continue;
            }
            let mult = u / self.upivot[s];
            terms.push((self.pivot_row[s], mult));
            if terms.len() > FT_FILL_CAP {
                return Err(FactorError::NeedsRefactorization);
            }
            for &(j2, u2) in &self.upper[s] {
                if j2 == p {
                    continue;
                }
                let e = pending.entry(j2).or_insert(0.0);
                *e -= mult * u2;
                if e.abs() <= DROP_TOL {
                    pending.remove(&j2);
                }
            }
            // Row `pivot_row[s]`'s entry in the replaced column is the
            // spike value, kept out of `pending` and tracked separately.
            pend_p -= mult * spike[self.pivot_row[s]];
        }
        debug_assert!(
            pending.is_empty(),
            "pending row should eliminate completely"
        );
        let new_diag = pend_p;
        if new_diag.abs() < FT_STAB_TOL * spike_max || new_diag.abs() < SINGULAR_TOL {
            return Err(FactorError::UnstablePivot);
        }

        // Commit.  Replace column `p` of U with the spike (retired entries
        // are the growth a product-form eta file would have kept)...
        for t in 0..m {
            if let Some(idx) = self.upper[t].iter().position(|&(j, _)| j == p) {
                self.upper[t].swap_remove(idx);
                self.compactions += 1;
            }
            if t != t_p {
                let sv = spike[self.pivot_row[t]];
                if sv != 0.0 {
                    self.upper[t].push((p, sv));
                }
            }
        }
        // ...retire the eliminated row, move its step to the end of the
        // elimination order, and record the row eta for solves.
        self.compactions += self.upper[t_p].len();
        self.upper[t_p].clear();
        self.upivot[t_p] = new_diag;
        self.order.remove(pos_p);
        self.order.push(t_p);
        for (pos, &t) in self.order.iter().enumerate().skip(pos_p) {
            self.order_pos[t] = pos;
        }
        if !terms.is_empty() {
            self.row_etas.push(RowEta { target: r_p, terms });
        }
        Ok(())
    }

    fn extend_row(&mut self, _w: &[f64], _c: f64) -> Result<(), FactorError> {
        // Growing the LU in place is not worth its complexity: the core
        // keeps the basic values current itself and refactorizes lazily at
        // the next solve, amortizing any number of appended rows into one
        // rebuild.
        Err(FactorError::NeedsRefactorization)
    }

    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool {
        use std::collections::{BTreeMap, BTreeSet};

        // Active working matrix, column-major with a row→columns index so
        // both Markowitz counts are maintainable.  BTree containers keep the
        // iteration order — and with it the pivot sequence — deterministic.
        let mut col: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); m];
        let mut row_cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
        for (k, &c) in basis.iter().enumerate() {
            cols.for_each(c, &mut |r, a| {
                if a != 0.0 {
                    *col[k].entry(r).or_insert(0.0) += a;
                    row_cols[r].insert(k);
                }
            });
        }
        let mut col_active = vec![true; m];
        let mut pivot_row = Vec::with_capacity(m);
        let mut pivot_col = Vec::with_capacity(m);
        let mut upivot = Vec::with_capacity(m);
        let mut lower: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);

        for _step in 0..m {
            // Markowitz pivot search: minimize (rowcount−1)·(colcount−1)
            // among entries above the stability threshold of their column.
            let mut best: Option<(usize, usize, usize, f64)> = None; // (score, r, k, |v|)
            for (k, active) in col_active.iter().enumerate() {
                if !active {
                    continue;
                }
                let cc = col[k].len();
                let colmax = col[k].values().fold(0.0f64, |acc, v| acc.max(v.abs()));
                if cc == 0 || colmax < SINGULAR_TOL {
                    return false; // structurally or numerically singular
                }
                for (&r, &v) in &col[k] {
                    let va = v.abs();
                    if va < LU_THRESHOLD * colmax || va < SINGULAR_TOL {
                        continue;
                    }
                    let score = (row_cols[r].len() - 1) * (cc - 1);
                    let better = match best {
                        None => true,
                        Some((bs, _, _, bv)) => score < bs || (score == bs && va > bv),
                    };
                    if better {
                        best = Some((score, r, k, va));
                    }
                }
                if matches!(best, Some((0, ..))) {
                    break; // a fill-free pivot cannot be beaten
                }
            }
            let Some((_, pr, pk, _)) = best else {
                return false;
            };
            let pivot = col[pk][&pr];
            // Snapshot the pivot row (U) and pivot column (L multipliers).
            let urow: Vec<(usize, f64)> = row_cols[pr]
                .iter()
                .filter(|&&j| j != pk)
                .map(|&j| (j, col[j][&pr]))
                .collect();
            let lcol: Vec<(usize, f64)> = col[pk]
                .iter()
                .filter(|&(&i, _)| i != pr)
                .map(|(&i, &v)| (i, v / pivot))
                .collect();
            // Eliminate: col_j ← col_j − (a_rj / pivot-scaled) updates.
            for &(j, urj) in &urow {
                for &(i, l) in &lcol {
                    let e = col[j].entry(i).or_insert(0.0);
                    *e -= l * urj;
                    if e.abs() < DROP_TOL {
                        col[j].remove(&i);
                        row_cols[i].remove(&j);
                    } else {
                        row_cols[i].insert(j);
                    }
                }
                col[j].remove(&pr);
            }
            // Deactivate the pivot row and column.
            for (&i, _) in col[pk].iter() {
                row_cols[i].remove(&pk);
            }
            col[pk].clear();
            row_cols[pr].clear();
            col_active[pk] = false;
            pivot_row.push(pr);
            pivot_col.push(pk);
            upivot.push(pivot);
            lower.push(lcol);
            upper.push(urow);
        }

        let mut col_step = vec![0usize; m];
        for (t, &k) in pivot_col.iter().enumerate() {
            col_step[k] = t;
        }
        self.m = m;
        self.pivot_row = pivot_row;
        self.pivot_col = pivot_col;
        self.upivot = upivot;
        self.lower = lower;
        self.upper = upper;
        self.order = (0..m).collect();
        self.order_pos = (0..m).collect();
        self.col_step = col_step;
        self.row_etas.clear();
        // `compactions` is a lifetime counter and deliberately survives.
        true
    }

    fn eta_count(&self) -> usize {
        self.row_etas.len()
    }

    fn compactions(&self) -> usize {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a ColumnStore holding the columns of a small matrix given
    /// column-major.
    fn store_from(columns: &[&[(usize, f64)]]) -> ColumnStore {
        let mut cols = ColumnStore::new(false);
        for entries in columns {
            let j = cols.push_col();
            for &(r, v) in *entries {
                cols.push_entry(j, r, v);
            }
        }
        cols
    }

    fn assert_vec_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    /// A 3×3 basis with known inverse, factored both ways: ftran/btran must
    /// agree between DenseInverse and LuFactor, before and after an update.
    #[test]
    fn lu_matches_dense_inverse_on_a_small_basis() {
        // B = [[2,0,1],[0,1,0],[1,0,1]] (columns listed column-major).
        let cols = store_from(&[
            &[(0, 2.0), (2, 1.0)],
            &[(1, 1.0)],
            &[(0, 1.0), (2, 1.0)],
            // A spare column to pivot in: A_3 = (1, 1, 0).
            &[(0, 1.0), (1, 1.0)],
        ]);
        let basis = [0usize, 1, 2];
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(dense.refactorize(3, &basis, &cols));
        assert!(lu.refactorize(3, &basis, &cols));
        assert_eq!(lu.eta_count(), 0);

        let b = [3.0, -1.0, 2.0];
        assert_vec_close(&dense.ftran(&b), &lu.ftran(&b));
        let c = [1.0, 2.0, -0.5];
        assert_vec_close(&dense.btran(&c), &lu.btran(&c));

        // Replace basis position 0 by the spare column and compare again.
        let mut a3 = vec![0.0; 3];
        cols.for_each(3, &mut |r, v| a3[r] += v);
        let d_dense = dense.ftran(&a3);
        let d_lu = lu.ftran(&a3);
        assert_vec_close(&d_dense, &d_lu);
        dense.update(0, &d_dense).unwrap();
        lu.update(0, &d_lu).unwrap();
        // A Forrest–Tomlin update keeps U compact: at most one row eta.
        assert!(lu.eta_count() <= 1);
        assert_vec_close(&dense.ftran(&b), &lu.ftran(&b));
        assert_vec_close(&dense.btran(&c), &lu.btran(&c));
    }

    /// A 5×5 circulant basis driven through a pivot sequence: after every
    /// Forrest–Tomlin update the factorization must agree with the dense
    /// inverse, and at the end with a from-scratch refactorization of the
    /// final basis.
    #[test]
    fn ft_updates_match_refactorize_from_scratch() {
        // Basis columns B_k = e_k + 0.5·e_{k+1 mod 5}; spares 5..9 mix rows.
        let cols = store_from(&[
            &[(0, 1.0), (1, 0.5)],
            &[(1, 1.0), (2, 0.5)],
            &[(2, 1.0), (3, 0.5)],
            &[(3, 1.0), (4, 0.5)],
            &[(4, 1.0), (0, 0.5)],
            &[(0, 1.0), (2, 1.0), (4, -1.0)],
            &[(1, 2.0), (3, -0.5)],
            &[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)],
            &[(2, -1.0), (4, 2.0)],
        ]);
        let mut basis = vec![0usize, 1, 2, 3, 4];
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(dense.refactorize(5, &basis, &cols));
        assert!(lu.refactorize(5, &basis, &cols));

        let probes: [[f64; 5]; 2] = [[1.0, -2.0, 0.5, 3.0, -1.0], [0.0, 1.0, 0.0, -1.0, 2.0]];
        for (pos, col) in [(0usize, 5usize), (2, 6), (4, 7), (1, 8)] {
            let mut a = vec![0.0; 5];
            cols.for_each(col, &mut |r, v| a[r] += v);
            let d = lu.ftran(&a);
            assert_vec_close(&dense.ftran(&a), &d);
            dense.update(pos, &d).unwrap();
            lu.update(pos, &d).unwrap();
            basis[pos] = col;
            for probe in &probes {
                assert_vec_close(&dense.ftran(probe), &lu.ftran(probe));
                assert_vec_close(&dense.btran(probe), &lu.btran(probe));
            }
        }
        // The eta file stays far below one eta per pivot's worth of fill,
        // and the retired-entry counter has seen real compaction.
        assert!(lu.eta_count() <= 4);
        assert!(lu.compactions() > 0);

        // Refactorize a fresh factorization on the final basis: the updated
        // one must solve identically (within roundoff).
        let mut fresh = LuFactor::default();
        assert!(fresh.refactorize(5, &basis, &cols));
        assert_eq!(fresh.eta_count(), 0);
        for probe in &probes {
            assert_vec_close(&fresh.ftran(probe), &lu.ftran(probe));
            assert_vec_close(&fresh.btran(probe), &lu.btran(probe));
        }
        // Refactorizing the live factorization clears its eta file but not
        // the lifetime compaction counter.
        let before = lu.compactions();
        assert!(lu.refactorize(5, &basis, &cols));
        assert_eq!(lu.eta_count(), 0);
        assert_eq!(lu.compactions(), before);
    }

    proptest::proptest! {
        /// Random pivot sequences: a diagonally dominant basis driven through
        /// arbitrary Forrest–Tomlin updates (refactorizing whenever an update
        /// declines, exactly as the simplex core does) must agree with the
        /// dense inverse after every pivot and with a from-scratch
        /// refactorization of the final basis at the end.
        #[test]
        fn prop_ft_updates_match_refactorize_after_random_pivots(
            m in 3usize..7,
            off in proptest::collection::vec((-0.45f64..0.45, -0.45f64..0.45), 12..13),
            pivots in proptest::collection::vec((0usize..6, 0usize..12), 1..10),
        ) {
            // Base columns B_k = (2+a)·e_k + b·e_{k+1 mod m}; spare pool of
            // 12 columns with the same shape shifted, so every replacement
            // keeps the basis comfortably nonsingular.
            let mut cols = ColumnStore::new(false);
            for k in 0..m {
                let (a, b) = off[k % off.len()];
                let j = cols.push_col();
                cols.push_entry(j, k, 2.0 + a);
                cols.push_entry(j, (k + 1) % m, b);
            }
            for (s, &(a, b)) in off.iter().enumerate() {
                let j = cols.push_col();
                cols.push_entry(j, s % m, 2.5 + a);
                cols.push_entry(j, (s + 2) % m, 0.5 + b);
            }
            let mut basis: Vec<usize> = (0..m).collect();
            let mut dense = DenseInverse::default();
            let mut lu = LuFactor::default();
            proptest::prop_assert!(dense.refactorize(m, &basis, &cols));
            proptest::prop_assert!(lu.refactorize(m, &basis, &cols));

            let probe: Vec<f64> = (0..m).map(|i| 1.0 - 0.5 * i as f64).collect();
            for &(pos, spare) in &pivots {
                let (pos, col) = (pos % m, m + spare);
                let mut a = vec![0.0; m];
                cols.for_each(col, &mut |r, v| a[r] += v);
                let d = lu.ftran(&a);
                for (x, y) in dense.ftran(&a).iter().zip(&d) {
                    proptest::prop_assert!((x - y).abs() < 1e-8);
                }
                // Mirror the solver contract: a declined update on either
                // side refactorizes both on the *old* basis and retries the
                // pivot from pristine factors.
                if lu.update(pos, &d).is_err() || dense.update(pos, &d).is_err() {
                    proptest::prop_assert!(dense.refactorize(m, &basis, &cols));
                    proptest::prop_assert!(lu.refactorize(m, &basis, &cols));
                    let d = lu.ftran(&a);
                    if lu.update(pos, &d).is_err() {
                        continue; // genuinely unstable pivot: skip it
                    }
                    dense.update(pos, &dense.ftran(&a)).unwrap();
                }
                basis[pos] = col;
                for (x, y) in dense.ftran(&probe).iter().zip(&lu.ftran(&probe)) {
                    proptest::prop_assert!((x - y).abs() < 1e-8);
                }
                for (x, y) in dense.btran(&probe).iter().zip(&lu.btran(&probe)) {
                    proptest::prop_assert!((x - y).abs() < 1e-8);
                }
            }

            let mut fresh = LuFactor::default();
            proptest::prop_assert!(fresh.refactorize(m, &basis, &cols));
            proptest::prop_assert_eq!(fresh.eta_count(), 0);
            for (x, y) in fresh.ftran(&probe).iter().zip(&lu.ftran(&probe)) {
                proptest::prop_assert!((x - y).abs() < 1e-8);
            }
            for (x, y) in fresh.btran(&probe).iter().zip(&lu.btran(&probe)) {
                proptest::prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }

    /// A declined update must leave the factorization fully usable.
    #[test]
    fn ft_decline_leaves_factorization_intact() {
        let cols = store_from(&[
            &[(0, 1.0)],
            &[(1, 1.0)],
            // Entering column nearly parallel to the departing one: the
            // replacement pivot is ~0 and the update must decline.
            &[(0, 1e-10), (1, 1.0)],
        ]);
        let mut lu = LuFactor::default();
        assert!(lu.refactorize(2, &[0, 1], &cols));
        let mut a = vec![0.0; 2];
        cols.for_each(2, &mut |r, v| a[r] += v);
        let d = lu.ftran(&a);
        assert_eq!(lu.update(0, &d), Err(FactorError::UnstablePivot));
        // Still solves for the *old* basis.
        let b = [3.0, -4.0];
        assert_vec_close(&lu.ftran(&b), &b);
        assert_vec_close(&lu.btran(&b), &b);
        assert_eq!(lu.eta_count(), 0);
    }

    #[test]
    fn singular_bases_are_rejected_by_both() {
        // Two identical columns: singular.
        let cols = store_from(&[&[(0, 1.0), (1, 2.0)], &[(0, 1.0), (1, 2.0)]]);
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(!dense.refactorize(2, &[0, 1], &cols));
        assert!(!lu.refactorize(2, &[0, 1], &cols));
    }

    #[test]
    fn dense_border_guard_declines_tiny_pivots() {
        let cols = store_from(&[&[(0, 1.0)]]);
        let mut dense = DenseInverse::default();
        assert!(dense.refactorize(1, &[0], &cols));
        assert_eq!(
            dense.extend_row(&[1.0], 1e-12),
            Err(FactorError::UnstablePivot)
        );
        // A healthy border is accepted and grows the dimension.
        assert!(dense.extend_row(&[1.0], 1.0).is_ok());
        assert_eq!(dense.ftran(&[1.0, 0.0]).len(), 2);
    }

    #[test]
    fn kinds_round_trip_and_lu_declines_row_extension() {
        for kind in FactorKind::ALL {
            assert_eq!(kind.name().parse::<FactorKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("cholesky".parse::<FactorKind>().is_err());
        assert_eq!(FactorKind::default(), FactorKind::Dense);
        assert_eq!("dual".parse::<WarmStrategy>().unwrap(), WarmStrategy::Dual);
        assert_eq!(
            "phase1".parse::<WarmStrategy>().unwrap(),
            WarmStrategy::Phase1
        );
        assert!("warm".parse::<WarmStrategy>().is_err());
        assert_eq!(WarmStrategy::default().to_string(), "dual");

        let mut lu = LuFactor::default();
        let cols = store_from(&[&[(0, 1.0)]]);
        assert!(lu.refactorize(1, &[0], &cols));
        assert_eq!(
            lu.extend_row(&[0.0], 1.0),
            Err(FactorError::NeedsRefactorization)
        );
    }
}
