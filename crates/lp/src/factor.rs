//! Basis factorizations behind the simplex core.
//!
//! Every revised-simplex iteration needs the basis matrix `B` applied in two
//! directions — `ftran` solves `B·d = a` (the pivot direction) and `btran`
//! solves `Bᵀ·y = c_B` (the dual prices) — plus a cheap rank-one `update`
//! when one basic column is replaced, and a from-scratch `refactorize` that
//! washes out the drift the updates accumulate.  The `Factorization` trait
//! is that seam: the `SimplexCore` iteration loop
//! is written against it, and the concrete linear algebra is pluggable per
//! solve through [`SolverTuning::factor`](crate::SolverTuning):
//!
//! * `DenseInverse` — the explicit dense `B⁻¹` the sparse backend carried
//!   before the seam existed: `O(m²)` solves, `O(m²)` Gauss-Jordan pivot
//!   updates, `O(m³)`-flavored refactorization.  Simple, and the reference
//!   the LU path is pinned against.
//! * `LuFactor` — a sparse LU elimination with **Markowitz ordering**
//!   (pivots chosen to minimize `(rowcount−1)·(colcount−1)` fill, under a
//!   threshold guard for stability) and a **product-form eta file** for
//!   updates: each basis change appends one sparse eta vector instead of
//!   touching `m²` entries, and the eta file is folded away at the next
//!   refactorization from pristine columns.  On the analysis's extremely
//!   sparse bases both solves and updates run in `O(nnz)` rather than
//!   `O(m²)`.
//!
//! Row extension (the warm `add_constraint` path) goes through
//! `Factorization::extend_row`: the dense inverse grows by a bordered
//! block — guarded against a near-singular border pivot — while the LU
//! factors decline (`FactorError::NeedsRefactorization`) and the core
//! refactorizes lazily at the next solve.

use std::fmt;
use std::str::FromStr;

use crate::core::ColumnStore;

/// Minimum magnitude accepted for an update or border pivot (matches the
/// solvers' pivot tolerance).
const PIVOT_EPS: f64 = 1e-7;
/// Below this magnitude a candidate LU pivot counts as structurally zero and
/// the basis as numerically singular.
const SINGULAR_TOL: f64 = 1e-11;
/// Threshold-pivoting factor: an LU pivot must be at least this fraction of
/// the largest entry in its column (the classic Markowitz/threshold
/// compromise between sparsity and stability).
const LU_THRESHOLD: f64 = 0.1;
/// Entries driven below this magnitude by elimination are dropped as exact
/// cancellations.
const DROP_TOL: f64 = 1e-13;
/// Hard cap on the eta file; reaching it forces a refactorization (the
/// core's periodic refresh normally keeps the file far shorter).
const ETA_CAP: usize = 512;

/// Which basis factorization a solve uses (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorKind {
    /// Explicit dense `B⁻¹` (the pre-seam behavior; the reference).
    #[default]
    Dense,
    /// Markowitz-ordered sparse LU with product-form eta updates.
    Lu,
}

impl FactorKind {
    /// The kind's canonical CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            FactorKind::Dense => "dense",
            FactorKind::Lu => "lu",
        }
    }

    /// All kinds, for matrix tests and sweeps.
    pub const ALL: [FactorKind; 2] = [FactorKind::Dense, FactorKind::Lu];

    /// Instantiates an empty factorization of this kind.
    pub(crate) fn instantiate(self) -> Box<dyn Factorization> {
        match self {
            FactorKind::Dense => Box::new(DenseInverse::default()),
            FactorKind::Lu => Box::new(LuFactor::default()),
        }
    }
}

impl fmt::Display for FactorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FactorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(FactorKind::Dense),
            "lu" => Ok(FactorKind::Lu),
            other => Err(format!(
                "unknown factorization `{other}` (expected dense or lu)"
            )),
        }
    }
}

/// How a warm session re-solves after incremental rows left the basis
/// primal-infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStrategy {
    /// Dual-simplex pivots from the (still dual-feasible) optimal basis —
    /// a handful of pivots instead of a phase-1 restart.
    #[default]
    Dual,
    /// The legacy path: violated rows get artificial columns and the next
    /// solve runs phase 1 over them.
    Phase1,
}

impl WarmStrategy {
    /// The strategy's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            WarmStrategy::Dual => "dual",
            WarmStrategy::Phase1 => "phase1",
        }
    }
}

impl fmt::Display for WarmStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WarmStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dual" => Ok(WarmStrategy::Dual),
            "phase1" => Ok(WarmStrategy::Phase1),
            other => Err(format!(
                "unknown warm-resolve strategy `{other}` (expected dual or phase1)"
            )),
        }
    }
}

/// Why a factorization operation declined; the core reacts by
/// refactorizing from pristine columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FactorError {
    /// The update/border pivot is too small to apply stably (the
    /// near-singular border guard lives here).
    UnstablePivot,
    /// The representation cannot absorb this change in place (LU row
    /// extension, eta-file overflow); rebuild at the next solve.
    NeedsRefactorization,
}

/// A basis factorization: everything the simplex core needs from `B`.
///
/// Vectors indexed "by row" run over constraint rows; vectors indexed "by
/// position" run over basis positions `0..m` (position `k` holds basic
/// column `basis[k]`).  Implementations must be deterministic — the same
/// call sequence yields bitwise-identical results (a backend contract
/// obligation) — and `Send + Sync` so sessions stay usable from the
/// parallel batch solver and the parallel partial pricer.
pub(crate) trait Factorization: Send + Sync {
    /// The kind this factorization implements.
    fn kind(&self) -> FactorKind;

    /// Solves `B·x = b`: `b` by row, result by basis position
    /// (e.g. the pivot direction `d = B⁻¹A_j`, or `x_B = B⁻¹b`).
    fn ftran(&self, b: &[f64]) -> Vec<f64>;

    /// [`ftran`](Self::ftran) for a sparse right-hand side given as
    /// `(row, value)` entries — the shape of every pivot direction
    /// `d = B⁻¹A_j`.  The default scatters and solves densely;
    /// representations that store the inverse explicitly override it with
    /// an `O(m·nnz)` product, which is what keeps the dense configuration
    /// at its pre-seam per-pivot cost.
    fn ftran_sparse(&self, entries: &[(usize, f64)]) -> Vec<f64> {
        let mut b = vec![0.0; self.dim()];
        for &(r, a) in entries {
            b[r] += a;
        }
        self.ftran(&b)
    }

    /// Solves `Bᵀ·y = c`: `c` by basis position, result by row
    /// (e.g. dual prices `y = B⁻ᵀc_B`, or row `p` of `B⁻¹` from `e_p`).
    fn btran(&self, c: &[f64]) -> Vec<f64>;

    /// Current dimension `m`.
    fn dim(&self) -> usize;

    /// Row `p` of `B⁻¹` (row-indexed) — needed once per pivot for the devex
    /// weight and dual-price updates.  The default solves `Bᵀy = e_p`;
    /// representations that store the inverse explicitly override it with a
    /// copy, which is what keeps the dense configuration at its pre-seam
    /// per-pivot cost.
    fn inverse_row(&self, p: usize) -> Vec<f64> {
        let mut e = vec![0.0; self.dim()];
        e[p] = 1.0;
        self.btran(&e)
    }

    /// Replaces the basic column at position `p`; `d = B⁻¹A_q` is the
    /// ftran'd entering column.  On `Err` the factorization is unchanged
    /// and the caller must refactorize before the next solve.
    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError>;

    /// Borders the factorization with a new row: `w` holds the row's
    /// coefficients at the old basic columns (by position) and `c` the
    /// coefficient of the new row's own basic column.  On `Err` the
    /// caller grows the basis bookkeeping anyway and refactorizes lazily.
    fn extend_row(&mut self, w: &[f64], c: f64) -> Result<(), FactorError>;

    /// Rebuilds from the pristine basis columns; returns `false` (leaving
    /// the previous factorization in place) when the basis is numerically
    /// singular.
    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool;

    /// Live eta vectors accumulated since the last refactorization
    /// (0 for representations without an eta file).
    fn eta_count(&self) -> usize {
        0
    }
}

/// The explicit dense basis inverse (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseInverse {
    /// `binv[k][r]` is entry `(k, r)` of `B⁻¹`: row `k` maps basis position
    /// `k`, column `r` maps constraint row `r`.
    binv: Vec<Vec<f64>>,
}

impl Factorization for DenseInverse {
    fn kind(&self) -> FactorKind {
        FactorKind::Dense
    }

    fn dim(&self) -> usize {
        self.binv.len()
    }

    fn inverse_row(&self, p: usize) -> Vec<f64> {
        self.binv[p].clone()
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)]) -> Vec<f64> {
        self.binv
            .iter()
            .map(|row| entries.iter().map(|&(r, a)| row[r] * a).sum())
            .collect()
    }

    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        self.binv
            .iter()
            .map(|row| row.iter().zip(b).map(|(x, bb)| x * bb).sum())
            .collect()
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.binv.len();
        let mut y = vec![0.0; m];
        for (k, row) in self.binv.iter().enumerate() {
            let ck = c[k];
            if ck != 0.0 {
                for (yr, br) in y.iter_mut().zip(row) {
                    *yr += ck * br;
                }
            }
        }
        y
    }

    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError> {
        let dp = d[p];
        if dp.abs() < PIVOT_EPS {
            return Err(FactorError::UnstablePivot);
        }
        for x in self.binv[p].iter_mut() {
            *x /= dp;
        }
        // One clone of the pivot row sidesteps the split borrow; the O(m)
        // copy is dominated by the O(m²) update below.
        let pivot_row = self.binv[p].clone();
        for (i, row) in self.binv.iter_mut().enumerate() {
            if i != p && d[i].abs() > 1e-12 {
                let factor = d[i];
                for (x, pr) in row.iter_mut().zip(&pivot_row) {
                    *x -= factor * pr;
                }
            }
        }
        Ok(())
    }

    fn extend_row(&mut self, w: &[f64], c: f64) -> Result<(), FactorError> {
        // Near-singular border guard: a border pivot this small would
        // poison B⁻¹ with huge entries; decline and let the core rebuild
        // from pristine columns instead.
        if c.abs() < PIVOT_EPS || !c.is_finite() {
            return Err(FactorError::UnstablePivot);
        }
        // With M = [[B, 0], [w, c]] the inverse is
        // [[B⁻¹, 0], [-(w·B⁻¹)/c, 1/c]].
        let m = self.binv.len();
        let wb = self.btran(w);
        let mut border = Vec::with_capacity(m + 1);
        border.extend(wb.iter().map(|&x| -x / c));
        border.push(1.0 / c);
        for row in self.binv.iter_mut() {
            row.push(0.0);
        }
        self.binv.push(border);
        Ok(())
    }

    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool {
        let stride = 2 * m;
        // Augmented [B | I], one flat allocation for cache-friendly sweeps.
        let mut work = vec![0.0; m * stride];
        for i in 0..m {
            work[i * stride + m + i] = 1.0;
        }
        for (k, &col) in basis.iter().enumerate() {
            cols.for_each(col, &mut |r, a| {
                work[r * stride + k] = a;
            });
        }
        for k in 0..m {
            let pivot_row = (k..m).max_by(|&a, &b| {
                work[a * stride + k]
                    .abs()
                    .partial_cmp(&work[b * stride + k].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(r) = pivot_row else { return m == 0 };
            if work[r * stride + k].abs() < SINGULAR_TOL {
                return false;
            }
            if r != k {
                for j in 0..stride {
                    work.swap(k * stride + j, r * stride + j);
                }
            }
            let pivot = work[k * stride + k];
            for x in &mut work[k * stride..(k + 1) * stride] {
                *x /= pivot;
            }
            for i in 0..m {
                if i != k {
                    let factor = work[i * stride + k];
                    if factor != 0.0 {
                        let (head, tail) = work.split_at_mut(k.max(i) * stride);
                        let (row_i, row_k) = if i > k {
                            (&mut tail[..stride], &head[k * stride..(k + 1) * stride])
                        } else {
                            (&mut head[i * stride..(i + 1) * stride][..], &tail[..stride])
                        };
                        // Skip the already-eliminated prefix: columns < k of
                        // row k are zero.
                        for (x, rk) in row_i[k..].iter_mut().zip(&row_k[k..]) {
                            *x -= factor * rk;
                        }
                    }
                }
            }
        }
        // B X = I solved column-wise: position k's row of the inverse is row
        // k of the right half.
        self.binv = (0..m)
            .map(|k| work[k * stride + m..(k + 1) * stride].to_vec())
            .collect();
        true
    }
}

/// One product-form update: the basis change at position `p` recorded as the
/// sparse column `d = B_old⁻¹ A_q` (entries other than `p` listed
/// explicitly, the pivot `d_p` kept separate).
#[derive(Debug, Clone)]
struct Eta {
    p: usize,
    dp: f64,
    entries: Vec<(usize, f64)>,
}

/// Markowitz-ordered sparse LU with a product-form eta file (see the
/// [module docs](self)).
///
/// The elimination is stored in "elimination form": step `t` pivots on
/// constraint row `pivot_row[t]` and basis position `pivot_col[t]`, with the
/// step's L multipliers (`lower[t]`, by row) and the pivot row's surviving U
/// entries (`upper[t]`, by basis position, pivot excluded) kept sparse.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactor {
    m: usize,
    pivot_row: Vec<usize>,
    pivot_col: Vec<usize>,
    upivot: Vec<f64>,
    lower: Vec<Vec<(usize, f64)>>,
    upper: Vec<Vec<(usize, f64)>>,
    etas: Vec<Eta>,
}

impl Factorization for LuFactor {
    fn kind(&self) -> FactorKind {
        FactorKind::Lu
    }

    fn dim(&self) -> usize {
        self.m
    }

    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut v = b.to_vec();
        // Forward: apply L_t⁻¹ in elimination order.
        for t in 0..m {
            let vr = v[self.pivot_row[t]];
            if vr != 0.0 {
                for &(i, l) in &self.lower[t] {
                    v[i] -= l * vr;
                }
            }
        }
        // Back substitution on U (reverse elimination order).
        let mut x = vec![0.0; m];
        for t in (0..m).rev() {
            let mut s = v[self.pivot_row[t]];
            for &(j, u) in &self.upper[t] {
                s -= u * x[j];
            }
            x[self.pivot_col[t]] = s / self.upivot[t];
        }
        // Product-form etas, oldest first: B⁻¹ = E_K⁻¹···E_1⁻¹ (LU)⁻¹.
        for eta in &self.etas {
            let xp = x[eta.p] / eta.dp;
            x[eta.p] = xp;
            if xp != 0.0 {
                for &(i, d) in &eta.entries {
                    x[i] -= d * xp;
                }
            }
        }
        x
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut v = c.to_vec();
        // Transposed etas, newest first.
        for eta in self.etas.iter().rev() {
            let mut s = v[eta.p];
            for &(i, d) in &eta.entries {
                s -= d * v[i];
            }
            v[eta.p] = s / eta.dp;
        }
        // Solve Uᵀ w = v (w by row): forward, since column `pivot_col[t]`
        // carries no U entry after step t.
        let mut w = vec![0.0; m];
        for t in 0..m {
            let wt = v[self.pivot_col[t]] / self.upivot[t];
            w[self.pivot_row[t]] = wt;
            if wt != 0.0 {
                for &(j, u) in &self.upper[t] {
                    v[j] -= u * wt;
                }
            }
        }
        // Solve Lᵀ y = w: reverse, rows in `lower[t]` pivot later than t.
        for t in (0..m).rev() {
            let mut s = w[self.pivot_row[t]];
            for &(i, l) in &self.lower[t] {
                s -= l * w[i];
            }
            w[self.pivot_row[t]] = s;
        }
        w
    }

    fn update(&mut self, p: usize, d: &[f64]) -> Result<(), FactorError> {
        let dp = d[p];
        if dp.abs() < PIVOT_EPS || !dp.is_finite() {
            return Err(FactorError::UnstablePivot);
        }
        if self.etas.len() >= ETA_CAP {
            return Err(FactorError::NeedsRefactorization);
        }
        let entries: Vec<(usize, f64)> = d
            .iter()
            .enumerate()
            .filter(|&(i, &di)| i != p && di.abs() > DROP_TOL)
            .map(|(i, &di)| (i, di))
            .collect();
        self.etas.push(Eta { p, dp, entries });
        Ok(())
    }

    fn extend_row(&mut self, _w: &[f64], _c: f64) -> Result<(), FactorError> {
        // Growing the LU in place is not worth its complexity: the core
        // keeps the basic values current itself and refactorizes lazily at
        // the next solve, amortizing any number of appended rows into one
        // rebuild.
        Err(FactorError::NeedsRefactorization)
    }

    fn refactorize(&mut self, m: usize, basis: &[usize], cols: &ColumnStore) -> bool {
        use std::collections::{BTreeMap, BTreeSet};

        // Active working matrix, column-major with a row→columns index so
        // both Markowitz counts are maintainable.  BTree containers keep the
        // iteration order — and with it the pivot sequence — deterministic.
        let mut col: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); m];
        let mut row_cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
        for (k, &c) in basis.iter().enumerate() {
            cols.for_each(c, &mut |r, a| {
                if a != 0.0 {
                    *col[k].entry(r).or_insert(0.0) += a;
                    row_cols[r].insert(k);
                }
            });
        }
        let mut col_active = vec![true; m];
        let mut pivot_row = Vec::with_capacity(m);
        let mut pivot_col = Vec::with_capacity(m);
        let mut upivot = Vec::with_capacity(m);
        let mut lower: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);

        for _step in 0..m {
            // Markowitz pivot search: minimize (rowcount−1)·(colcount−1)
            // among entries above the stability threshold of their column.
            let mut best: Option<(usize, usize, usize, f64)> = None; // (score, r, k, |v|)
            for (k, active) in col_active.iter().enumerate() {
                if !active {
                    continue;
                }
                let cc = col[k].len();
                let colmax = col[k].values().fold(0.0f64, |acc, v| acc.max(v.abs()));
                if cc == 0 || colmax < SINGULAR_TOL {
                    return false; // structurally or numerically singular
                }
                for (&r, &v) in &col[k] {
                    let va = v.abs();
                    if va < LU_THRESHOLD * colmax || va < SINGULAR_TOL {
                        continue;
                    }
                    let score = (row_cols[r].len() - 1) * (cc - 1);
                    let better = match best {
                        None => true,
                        Some((bs, _, _, bv)) => score < bs || (score == bs && va > bv),
                    };
                    if better {
                        best = Some((score, r, k, va));
                    }
                }
                if matches!(best, Some((0, ..))) {
                    break; // a fill-free pivot cannot be beaten
                }
            }
            let Some((_, pr, pk, _)) = best else {
                return false;
            };
            let pivot = col[pk][&pr];
            // Snapshot the pivot row (U) and pivot column (L multipliers).
            let urow: Vec<(usize, f64)> = row_cols[pr]
                .iter()
                .filter(|&&j| j != pk)
                .map(|&j| (j, col[j][&pr]))
                .collect();
            let lcol: Vec<(usize, f64)> = col[pk]
                .iter()
                .filter(|&(&i, _)| i != pr)
                .map(|(&i, &v)| (i, v / pivot))
                .collect();
            // Eliminate: col_j ← col_j − (a_rj / pivot-scaled) updates.
            for &(j, urj) in &urow {
                for &(i, l) in &lcol {
                    let e = col[j].entry(i).or_insert(0.0);
                    *e -= l * urj;
                    if e.abs() < DROP_TOL {
                        col[j].remove(&i);
                        row_cols[i].remove(&j);
                    } else {
                        row_cols[i].insert(j);
                    }
                }
                col[j].remove(&pr);
            }
            // Deactivate the pivot row and column.
            for (&i, _) in col[pk].iter() {
                row_cols[i].remove(&pk);
            }
            col[pk].clear();
            row_cols[pr].clear();
            col_active[pk] = false;
            pivot_row.push(pr);
            pivot_col.push(pk);
            upivot.push(pivot);
            lower.push(lcol);
            upper.push(urow);
        }

        self.m = m;
        self.pivot_row = pivot_row;
        self.pivot_col = pivot_col;
        self.upivot = upivot;
        self.lower = lower;
        self.upper = upper;
        self.etas.clear();
        true
    }

    fn eta_count(&self) -> usize {
        self.etas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a ColumnStore holding the columns of a small matrix given
    /// column-major.
    fn store_from(columns: &[&[(usize, f64)]]) -> ColumnStore {
        let mut cols = ColumnStore::new(false);
        for entries in columns {
            let j = cols.push_col();
            for &(r, v) in *entries {
                cols.push_entry(j, r, v);
            }
        }
        cols
    }

    fn assert_vec_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    /// A 3×3 basis with known inverse, factored both ways: ftran/btran must
    /// agree between DenseInverse and LuFactor, before and after an update.
    #[test]
    fn lu_matches_dense_inverse_on_a_small_basis() {
        // B = [[2,0,1],[0,1,0],[1,0,1]] (columns listed column-major).
        let cols = store_from(&[
            &[(0, 2.0), (2, 1.0)],
            &[(1, 1.0)],
            &[(0, 1.0), (2, 1.0)],
            // A spare column to pivot in: A_3 = (1, 1, 0).
            &[(0, 1.0), (1, 1.0)],
        ]);
        let basis = [0usize, 1, 2];
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(dense.refactorize(3, &basis, &cols));
        assert!(lu.refactorize(3, &basis, &cols));
        assert_eq!(lu.eta_count(), 0);

        let b = [3.0, -1.0, 2.0];
        assert_vec_close(&dense.ftran(&b), &lu.ftran(&b));
        let c = [1.0, 2.0, -0.5];
        assert_vec_close(&dense.btran(&c), &lu.btran(&c));

        // Replace basis position 0 by the spare column and compare again.
        let mut a3 = vec![0.0; 3];
        cols.for_each(3, &mut |r, v| a3[r] += v);
        let d_dense = dense.ftran(&a3);
        let d_lu = lu.ftran(&a3);
        assert_vec_close(&d_dense, &d_lu);
        dense.update(0, &d_dense).unwrap();
        lu.update(0, &d_lu).unwrap();
        assert_eq!(lu.eta_count(), 1);
        assert_vec_close(&dense.ftran(&b), &lu.ftran(&b));
        assert_vec_close(&dense.btran(&c), &lu.btran(&c));
    }

    #[test]
    fn singular_bases_are_rejected_by_both() {
        // Two identical columns: singular.
        let cols = store_from(&[&[(0, 1.0), (1, 2.0)], &[(0, 1.0), (1, 2.0)]]);
        let mut dense = DenseInverse::default();
        let mut lu = LuFactor::default();
        assert!(!dense.refactorize(2, &[0, 1], &cols));
        assert!(!lu.refactorize(2, &[0, 1], &cols));
    }

    #[test]
    fn dense_border_guard_declines_tiny_pivots() {
        let cols = store_from(&[&[(0, 1.0)]]);
        let mut dense = DenseInverse::default();
        assert!(dense.refactorize(1, &[0], &cols));
        assert_eq!(
            dense.extend_row(&[1.0], 1e-12),
            Err(FactorError::UnstablePivot)
        );
        // A healthy border is accepted and grows the dimension.
        assert!(dense.extend_row(&[1.0], 1.0).is_ok());
        assert_eq!(dense.ftran(&[1.0, 0.0]).len(), 2);
    }

    #[test]
    fn kinds_round_trip_and_lu_declines_row_extension() {
        for kind in FactorKind::ALL {
            assert_eq!(kind.name().parse::<FactorKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("cholesky".parse::<FactorKind>().is_err());
        assert_eq!(FactorKind::default(), FactorKind::Dense);
        assert_eq!("dual".parse::<WarmStrategy>().unwrap(), WarmStrategy::Dual);
        assert_eq!(
            "phase1".parse::<WarmStrategy>().unwrap(),
            WarmStrategy::Phase1
        );
        assert!("warm".parse::<WarmStrategy>().is_err());
        assert_eq!(WarmStrategy::default().to_string(), "dual");

        let mut lu = LuFactor::default();
        let cols = store_from(&[&[(0, 1.0)]]);
        assert!(lu.refactorize(1, &[0], &cols));
        assert_eq!(
            lu.extend_row(&[0.0], 1.0),
            Err(FactorError::NeedsRefactorization)
        );
    }
}
