//! The LP problem model and the dense reference solve.
//!
//! This module owns the crate's vocabulary — [`LpProblem`], [`LpSolution`],
//! [`LpStatus`], [`SolveStats`] — and the one-shot reference entry point
//! [`LpProblem::solve`].  The iteration machinery itself lives in the shared
//! `SimplexCore`: the dense path is simply the
//! core configured with dense column storage and the explicit dense basis
//! inverse, so the reference solver and the sparse session backend can never
//! drift apart feature-by-feature again (they used to be two parallel
//! 1000-line implementations of the same loop).

use std::fmt;

use crate::core::SimplexCore;
use crate::factor::{FactorKind, WarmStrategy};
use crate::pricing::{PricingRule, SolverTuning};
use crate::sparse::SparseMatrix;

/// Per-solve solver effort and presolve-reduction counters, carried on every
/// [`LpSolution`] so degeneracy regressions are observable without a
/// profiler (they surface in `AnalysisReport`'s per-group LP stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex iterations across all phases of the solve (dual-simplex
    /// restoration pivots included).
    pub iterations: usize,
    /// Basis refactorizations (rebuilds of the factorization from the
    /// pristine columns).
    pub refactorizations: usize,
    /// Constraint rows removed by presolve before the solve.
    pub presolve_rows: usize,
    /// Columns removed by presolve (fixed by singleton rows or empty).
    pub presolve_cols: usize,
    /// Factorization update etas appended by the LU factorization (0 under
    /// the dense inverse).  Under the Forrest–Tomlin scheme each successful
    /// update appends one row eta.
    pub etas: usize,
    /// Dual-simplex pivots spent restoring primal feasibility after warm
    /// incremental rows (0 for cold solves and the phase-1 strategy).
    pub dual_pivots: usize,
    /// Nonbasic variables moved bound-to-bound without a basis change — by
    /// the bound-flipping dual ratio test or by a primal entering step that
    /// hit the entering variable's own upper bound first.
    pub bound_flips: usize,
    /// U entries retired in place by Forrest–Tomlin column replacements —
    /// the growth a product-form eta file would have accumulated instead
    /// (0 under the dense inverse).
    pub eta_compactions: usize,
    /// Peak length of the LU eta file observed during the solve (0 under
    /// the dense inverse).  Under `merge` this takes the max, not the sum.
    pub eta_len: usize,
    /// Nanoseconds spent in forward solves (`B⁻¹·`: directions, basic-value
    /// recomputation, bound-flip batches).
    pub ftran_ns: u64,
    /// Nanoseconds spent in backward solves (`·B⁻¹`: dual prices, pivot
    /// rows, steepest-edge reference solves).
    pub btran_ns: u64,
    /// Nanoseconds spent choosing entering columns (primal) and leaving
    /// rows (dual).
    pub pricing_ns: u64,
    /// Nanoseconds spent in ratio tests (primal Harris/Bland passes and the
    /// dual entering scan, bound-flip breakpoint walk included).
    pub ratio_ns: u64,
    /// Forward solves completed on the hyper-sparse (Gilbert–Peierls)
    /// path of the LU kernels (0 under the dense inverse).
    pub hyper_sparse_ftrans: u64,
    /// Backward solves completed on the hyper-sparse path (0 under the
    /// dense inverse).
    pub hyper_sparse_btrans: u64,
    /// LU kernel calls that ran — or mid-solve fell back to — the dense
    /// scan because the result density crossed the threshold.
    pub dense_fallbacks: u64,
    /// Kernel-workspace growth events after initial sizing — heap
    /// allocations on the per-pivot hot path, 0 in steady state (CI
    /// asserts this).
    pub kernel_allocs: u64,
}

impl SolveStats {
    /// Component-wise sum (used to aggregate phase and group stats);
    /// `eta_len` is a peak, so it merges by max.
    pub fn merge(&self, other: &SolveStats) -> SolveStats {
        SolveStats {
            iterations: self.iterations + other.iterations,
            refactorizations: self.refactorizations + other.refactorizations,
            presolve_rows: self.presolve_rows + other.presolve_rows,
            presolve_cols: self.presolve_cols + other.presolve_cols,
            etas: self.etas + other.etas,
            dual_pivots: self.dual_pivots + other.dual_pivots,
            bound_flips: self.bound_flips + other.bound_flips,
            eta_compactions: self.eta_compactions + other.eta_compactions,
            eta_len: self.eta_len.max(other.eta_len),
            ftran_ns: self.ftran_ns + other.ftran_ns,
            btran_ns: self.btran_ns + other.btran_ns,
            pricing_ns: self.pricing_ns + other.pricing_ns,
            ratio_ns: self.ratio_ns + other.ratio_ns,
            hyper_sparse_ftrans: self.hyper_sparse_ftrans + other.hyper_sparse_ftrans,
            hyper_sparse_btrans: self.hyper_sparse_btrans + other.hyper_sparse_btrans,
            dense_fallbacks: self.dense_fallbacks + other.dense_fallbacks,
            kernel_allocs: self.kernel_allocs + other.kernel_allocs,
        }
    }
}

/// Identifier of a variable in an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LpVarId(usize);

impl LpVarId {
    /// Index of the variable in the order of creation.
    pub fn index(&self) -> usize {
        self.0
    }

    /// The variable with the given creation index.
    ///
    /// Sessions share one id space with the [`LpProblem`] they were opened
    /// on (see [`LpSession`](crate::LpSession)), so callers that track
    /// variables by index can reconstruct ids; an index that was never
    /// created yields a dangling id.
    pub fn from_index(index: usize) -> Self {
        LpVarId(index)
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The solve ran out of resources — its wall-clock deadline, its
    /// iteration cap (explicit via [`SolveBudget`](crate::SolveBudget), or
    /// the solver's built-in runaway backstop), or its refactorization cap —
    /// before reaching a verdict.
    ///
    /// This is a statement about *resources*, never about the problem:
    /// callers must not treat it as infeasibility (it must not trigger
    /// poly-degree escalation retries) and must not trust the accompanying
    /// objective/values.  The [`SolveStats`] on the solution record how much
    /// was spent before the budget ran out.
    BudgetExhausted,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::BudgetExhausted => "budget exhausted",
        };
        write!(f, "{s}")
    }
}

/// A solution returned by [`LpProblem::solve`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Status of the solve; values are meaningful only when `Optimal`.
    pub status: LpStatus,
    /// Objective value at the solution.
    pub objective: f64,
    /// Solver-effort and presolve counters of the solve that produced this
    /// solution.
    pub stats: SolveStats,
    values: Vec<f64>,
}

impl LpSolution {
    /// Assembles a solution (used by in-crate backends).
    pub(crate) fn new(status: LpStatus, objective: f64, values: Vec<f64>) -> Self {
        LpSolution {
            status,
            objective,
            stats: SolveStats::default(),
            values,
        }
    }

    /// Attaches solve statistics.
    pub(crate) fn with_stats(mut self, stats: SolveStats) -> Self {
        self.stats = stats;
        self
    }

    /// The value of a variable in the solution (0 unless the status is
    /// [`LpStatus::Optimal`]).
    pub fn value(&self, var: LpVarId) -> f64 {
        self.values.get(var.0).copied().unwrap_or(0.0)
    }

    /// All variable values in creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether the solve succeeded.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

/// A linear program: minimize `c·x` subject to linear constraints, with each
/// variable either non-negative or free.
///
/// Constraint rows are stored sparsely (CSR, see [`SparseMatrix`]): the
/// builder emits rows with a handful of nonzeros each, and both the dense
/// reference configuration and the sparse session backend of the shared
/// simplex core consume them directly.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    names: Vec<String>,
    free: Vec<bool>,
    rows: SparseMatrix,
    cmps: Vec<Cmp>,
    rhs: Vec<f64>,
    objective: Vec<(LpVarId, f64)>,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        LpProblem::default()
    }

    /// Adds a variable.  `free = false` constrains it to be non-negative;
    /// `free = true` lets it take any real value.
    pub fn add_var(&mut self, name: impl Into<String>, free: bool) -> LpVarId {
        self.names.push(name.into());
        self.free.push(free);
        LpVarId(self.names.len() - 1)
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.cmps.len()
    }

    /// The name of a variable.
    pub fn var_name(&self, var: LpVarId) -> &str {
        &self.names[var.0]
    }

    /// Whether a variable is sign-unrestricted.
    pub fn is_free(&self, var: LpVarId) -> bool {
        self.free[var.0]
    }

    /// Adds the constraint `Σ coeff·var  cmp  rhs`.
    ///
    /// Duplicate variables in `terms` are accepted (their coefficients add up).
    pub fn add_constraint(&mut self, terms: Vec<(LpVarId, f64)>, cmp: Cmp, rhs: f64) {
        self.rows.push_row(terms.into_iter().map(|(v, c)| (v.0, c)));
        self.rows.grow_cols(self.names.len());
        self.cmps.push(cmp);
        self.rhs.push(rhs);
    }

    /// The sparse coefficient matrix of the constraint rows (columns are
    /// variable indices in creation order).
    pub fn matrix(&self) -> &SparseMatrix {
        &self.rows
    }

    /// The comparison operator of constraint `i`.
    // Takes a row index, so no confusion with `Ord::cmp` in practice.
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(&self, i: usize) -> Cmp {
        self.cmps[i]
    }

    /// The right-hand side of constraint `i`.
    pub fn rhs(&self, i: usize) -> f64 {
        self.rhs[i]
    }

    /// The `(variable, coefficient)` entries of constraint `i`.
    pub fn constraint_terms(&self, i: usize) -> impl Iterator<Item = (LpVarId, f64)> + '_ {
        self.rows.row(i).map(|(c, v)| (LpVarId(c), v))
    }

    /// Sets the objective `minimize Σ coeff·var`.
    pub fn set_objective(&mut self, terms: Vec<(LpVarId, f64)>) {
        self.objective = terms;
    }

    /// The objective terms as set by [`set_objective`](Self::set_objective).
    pub fn objective(&self) -> &[(LpVarId, f64)] {
        &self.objective
    }

    /// Solves the problem with the two-phase simplex method (default
    /// pricing).
    pub fn solve(&self) -> LpSolution {
        self.solve_with(PricingRule::default())
    }

    /// Solves the problem with the two-phase simplex method under the given
    /// pricing rule — the raw reference path: dense columns, the explicit
    /// dense basis inverse, no presolve.
    pub fn solve_with(&self, pricing: PricingRule) -> LpSolution {
        let tuning = SolverTuning {
            pricing,
            presolve: false,
            factor: FactorKind::Dense,
            warm: WarmStrategy::Dual,
            ..SolverTuning::default()
        };
        SimplexCore::solve_problem(self, &tuning, true)
    }

    /// Solves the problem through the shared core with dense column storage
    /// under explicit tuning (what the dense backend's sessions run per
    /// `minimize`; presolve is the backend wrapper's business).
    pub(crate) fn solve_dense_with(&self, tuning: &SolverTuning) -> LpSolution {
        SimplexCore::solve_problem(self, tuning, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_maximization_via_minimization() {
        // max x + y s.t. x <= 2, y <= 3, x + y <= 4  => 4
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.set_objective(vec![(x, -1.0), (y, -1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, -4.0);
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8  => x=2, y=1
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Eq, 8.0);
        lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn greater_equal_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  => x=7, y=3 obj 23
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Ge, 3.0);
        lp.set_objective(vec![(x, 2.0), (y, 3.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, 23.0);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // min x s.t. x >= -5 (x free)  => x = -5
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", true);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, -5.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), -5.0);
    }

    #[test]
    fn free_variable_equality_system() {
        // x + y = 1, x - y = 5, both free: x = 3, y = -2.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", true);
        let y = lp.add_var("y", true);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 5.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), -2.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        lp.set_objective(vec![(x, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        lp.set_objective(vec![(x, -1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // min x s.t. x + x >= 6  => x = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0), (x, 1.0)], Cmp::Ge, 6.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1  => y = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Cmp::Le, -4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(y, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate corner; must not cycle.
        let mut lp = LpProblem::new();
        let x1 = lp.add_var("x1", false);
        let x2 = lp.add_var("x2", false);
        let x3 = lp.add_var("x3", false);
        let x4 = lp.add_var("x4", false);
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(vec![(x1, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(x1, -10.0), (x2, 57.0), (x3, 9.0), (x4, 24.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn larger_random_feasible_problems_have_bounded_residuals() {
        // Deterministic pseudo-random LPs: minimize sum of vars subject to
        // cover constraints; verify feasibility of the returned point.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 1000.0
        };
        for _ in 0..5 {
            let mut lp = LpProblem::new();
            let vars: Vec<_> = (0..12)
                .map(|i| lp.add_var(format!("v{i}"), false))
                .collect();
            let mut rows = Vec::new();
            for _ in 0..8 {
                let terms: Vec<_> = vars.iter().map(|&v| (v, 0.2 + next())).collect();
                let rhs = 1.0 + 3.0 * next();
                rows.push((terms.clone(), rhs));
                lp.add_constraint(terms, Cmp::Ge, rhs);
            }
            lp.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
            let sol = lp.solve();
            assert!(sol.is_optimal());
            for (terms, rhs) in rows {
                let lhs: f64 = terms.iter().map(|&(v, c)| c * sol.value(v)).sum();
                assert!(lhs >= rhs - 1e-6, "constraint violated: {lhs} < {rhs}");
            }
            for &v in &vars {
                assert!(sol.value(v) >= -1e-9);
            }
        }
    }

    #[test]
    fn solve_stats_count_iterations_under_every_pricing_rule() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 — needs phase 1 + pivots.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
        let mut objectives = Vec::new();
        for rule in PricingRule::ALL {
            let sol = lp.solve_with(rule);
            assert!(sol.is_optimal(), "{rule}: {:?}", sol.status);
            assert!(sol.stats.iterations > 0, "{rule} reported no iterations");
            // The raw dense solve has no presolve stage, no LU etas, and no
            // warm rows to restore dually.
            assert_eq!(sol.stats.presolve_rows, 0);
            assert_eq!(sol.stats.etas, 0);
            assert_eq!(sol.stats.dual_pivots, 0);
            objectives.push(sol.objective);
        }
        for pair in objectives.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-9,
                "pricing changed the optimum"
            );
        }
        let merged = SolveStats {
            iterations: 2,
            refactorizations: 1,
            presolve_rows: 3,
            presolve_cols: 4,
            etas: 5,
            dual_pivots: 6,
            bound_flips: 2,
            eta_compactions: 3,
            eta_len: 10,
            ftran_ns: 100,
            btran_ns: 200,
            pricing_ns: 300,
            ratio_ns: 400,
            hyper_sparse_ftrans: 9,
            hyper_sparse_btrans: 8,
            dense_fallbacks: 2,
            kernel_allocs: 1,
        }
        .merge(&SolveStats {
            iterations: 5,
            dual_pivots: 1,
            bound_flips: 4,
            eta_len: 7,
            ftran_ns: 11,
            hyper_sparse_ftrans: 1,
            dense_fallbacks: 3,
            ..SolveStats::default()
        });
        assert_eq!(merged.iterations, 7);
        assert_eq!(merged.presolve_cols, 4);
        assert_eq!(merged.etas, 5);
        assert_eq!(merged.dual_pivots, 7);
        assert_eq!(merged.bound_flips, 6);
        assert_eq!(merged.eta_compactions, 3);
        // Peak, not sum: the longest eta file either side saw.
        assert_eq!(merged.eta_len, 10);
        assert_eq!(merged.ftran_ns, 111);
        assert_eq!(merged.btran_ns, 200);
        assert_eq!(merged.hyper_sparse_ftrans, 10);
        assert_eq!(merged.hyper_sparse_btrans, 8);
        assert_eq!(merged.dense_fallbacks, 5);
        assert_eq!(merged.kernel_allocs, 1);
    }

    #[test]
    fn solution_accessors() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.num_vars(), 1);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        assert_eq!(lp.num_constraints(), 1);
        lp.set_objective(vec![(x, -1.0)]);
        let sol = lp.solve();
        assert_eq!(sol.values().len(), 1);
        assert_close(sol.value(x), 5.0);
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
    }
}
