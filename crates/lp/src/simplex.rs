//! Dense two-phase primal simplex.
//!
//! The implementation keeps the full tableau in memory.  Problem sizes arising
//! from the central-moment analysis are modest (hundreds of variables and
//! constraints per strongly-connected component of the call graph), so a dense
//! tableau is both simple and fast enough, and it keeps the solver free of
//! external dependencies.

// Dense tableau kernels index several parallel rows/columns at once; indexed
// loops are the clearest form here.
#![allow(clippy::needless_range_loop)]

use std::fmt;

use crate::pricing::{bland_fallback_threshold, PivotView, PricingRule};
use crate::sparse::SparseMatrix;

/// Per-solve solver effort and presolve-reduction counters, carried on every
/// [`LpSolution`] so degeneracy regressions are observable without a
/// profiler (they surface in `AnalysisReport`'s per-group LP stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex iterations across all phases of the solve.
    pub iterations: usize,
    /// Basis refactorizations (tableau rebuilds for the dense solver,
    /// `B⁻¹` recomputations for the revised solver).
    pub refactorizations: usize,
    /// Constraint rows removed by presolve before the solve.
    pub presolve_rows: usize,
    /// Columns removed by presolve (fixed by singleton rows or empty).
    pub presolve_cols: usize,
}

impl SolveStats {
    /// Component-wise sum (used to aggregate phase and group stats).
    pub fn merge(&self, other: &SolveStats) -> SolveStats {
        SolveStats {
            iterations: self.iterations + other.iterations,
            refactorizations: self.refactorizations + other.refactorizations,
            presolve_rows: self.presolve_rows + other.presolve_rows,
            presolve_cols: self.presolve_cols + other.presolve_cols,
        }
    }
}

/// Identifier of a variable in an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LpVarId(usize);

impl LpVarId {
    /// Index of the variable in the order of creation.
    pub fn index(&self) -> usize {
        self.0
    }

    /// The variable with the given creation index.
    ///
    /// Sessions share one id space with the [`LpProblem`] they were opened
    /// on (see [`LpSession`](crate::LpSession)), so callers that track
    /// variables by index can reconstruct ids; an index that was never
    /// created yields a dangling id.
    pub fn from_index(index: usize) -> Self {
        LpVarId(index)
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was exceeded (should not happen with Bland's rule;
    /// reported rather than looping forever if numerics degenerate).
    IterationLimit,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit",
        };
        write!(f, "{s}")
    }
}

/// A solution returned by [`LpProblem::solve`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Status of the solve; values are meaningful only when `Optimal`.
    pub status: LpStatus,
    /// Objective value at the solution.
    pub objective: f64,
    /// Solver-effort and presolve counters of the solve that produced this
    /// solution.
    pub stats: SolveStats,
    values: Vec<f64>,
}

impl LpSolution {
    /// Assembles a solution (used by in-crate backends).
    pub(crate) fn new(status: LpStatus, objective: f64, values: Vec<f64>) -> Self {
        LpSolution {
            status,
            objective,
            stats: SolveStats::default(),
            values,
        }
    }

    /// Attaches solve statistics.
    pub(crate) fn with_stats(mut self, stats: SolveStats) -> Self {
        self.stats = stats;
        self
    }

    /// The value of a variable in the solution (0 unless the status is
    /// [`LpStatus::Optimal`]).
    pub fn value(&self, var: LpVarId) -> f64 {
        self.values.get(var.0).copied().unwrap_or(0.0)
    }

    /// All variable values in creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether the solve succeeded.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

/// A linear program: minimize `c·x` subject to linear constraints, with each
/// variable either non-negative or free.
///
/// Constraint rows are stored sparsely (CSR, see [`SparseMatrix`]): the
/// builder emits rows with a handful of nonzeros each, and both the dense
/// reference simplex and the revised sparse simplex consume them directly.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    names: Vec<String>,
    free: Vec<bool>,
    rows: SparseMatrix,
    cmps: Vec<Cmp>,
    rhs: Vec<f64>,
    objective: Vec<(LpVarId, f64)>,
}

const EPS: f64 = 1e-9;
/// Minimum magnitude accepted for a pivot element (larger than `EPS` so that
/// drift-polluted near-zero entries are never chosen as pivots).
const PIVOT_EPS: f64 = 1e-7;
/// Tolerance used when confirming unboundedness against fresh reduced costs.
const UNBOUNDED_EPS: f64 = 1e-6;
const FEAS_EPS: f64 = 1e-6;

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        LpProblem::default()
    }

    /// Adds a variable.  `free = false` constrains it to be non-negative;
    /// `free = true` lets it take any real value.
    pub fn add_var(&mut self, name: impl Into<String>, free: bool) -> LpVarId {
        self.names.push(name.into());
        self.free.push(free);
        LpVarId(self.names.len() - 1)
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.cmps.len()
    }

    /// The name of a variable.
    pub fn var_name(&self, var: LpVarId) -> &str {
        &self.names[var.0]
    }

    /// Whether a variable is sign-unrestricted.
    pub fn is_free(&self, var: LpVarId) -> bool {
        self.free[var.0]
    }

    /// Adds the constraint `Σ coeff·var  cmp  rhs`.
    ///
    /// Duplicate variables in `terms` are accepted (their coefficients add up).
    pub fn add_constraint(&mut self, terms: Vec<(LpVarId, f64)>, cmp: Cmp, rhs: f64) {
        self.rows.push_row(terms.into_iter().map(|(v, c)| (v.0, c)));
        self.rows.grow_cols(self.names.len());
        self.cmps.push(cmp);
        self.rhs.push(rhs);
    }

    /// The sparse coefficient matrix of the constraint rows (columns are
    /// variable indices in creation order).
    pub fn matrix(&self) -> &SparseMatrix {
        &self.rows
    }

    /// The comparison operator of constraint `i`.
    // Takes a row index, so no confusion with `Ord::cmp` in practice.
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(&self, i: usize) -> Cmp {
        self.cmps[i]
    }

    /// The right-hand side of constraint `i`.
    pub fn rhs(&self, i: usize) -> f64 {
        self.rhs[i]
    }

    /// The `(variable, coefficient)` entries of constraint `i`.
    pub fn constraint_terms(&self, i: usize) -> impl Iterator<Item = (LpVarId, f64)> + '_ {
        self.rows.row(i).map(|(c, v)| (LpVarId(c), v))
    }

    /// Sets the objective `minimize Σ coeff·var`.
    pub fn set_objective(&mut self, terms: Vec<(LpVarId, f64)>) {
        self.objective = terms;
    }

    /// The objective terms as set by [`set_objective`](Self::set_objective).
    pub fn objective(&self) -> &[(LpVarId, f64)] {
        &self.objective
    }

    /// Solves the problem with the two-phase simplex method (default
    /// pricing).
    pub fn solve(&self) -> LpSolution {
        self.solve_with(PricingRule::default())
    }

    /// Solves the problem with the two-phase simplex method under the given
    /// pricing rule.
    pub fn solve_with(&self, pricing: PricingRule) -> LpSolution {
        Tableau::build(self).solve(self, pricing)
    }
}

/// Internal dense simplex tableau in standard form.
struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Pristine copy of the initial matrix (including the RHS column), used to
    /// periodically refactorize the tableau and wash out floating-point drift.
    original: Vec<Vec<f64>>,
    /// Indices of the basic variable of each row.
    basis: Vec<usize>,
    /// Total number of structural (split) variables, before slacks/artificials.
    n_struct: usize,
    /// Total number of columns excluding the RHS.
    n_cols: usize,
    /// Map from problem variable to (positive column, optional negative column).
    var_cols: Vec<(usize, Option<usize>)>,
    /// Columns of artificial variables.
    artificials: Vec<usize>,
    /// Per-column artificial flag (ratio tests consult it per row).
    is_artificial: Vec<bool>,
    /// Whether the RHS column currently carries an anti-degeneracy shift
    /// (washed out by the next refactorization; must be washed before
    /// feasibility checks or value extraction).
    rhs_shifted: bool,
}

impl Tableau {
    fn build(problem: &LpProblem) -> Tableau {
        // Assign columns: non-negative vars get one column, free vars two.
        let mut var_cols = Vec::with_capacity(problem.names.len());
        let mut next = 0usize;
        for &is_free in &problem.free {
            if is_free {
                var_cols.push((next, Some(next + 1)));
                next += 2;
            } else {
                var_cols.push((next, None));
                next += 1;
            }
        }
        let n_struct = next;
        let m = problem.num_constraints();

        // Count slack columns.
        let n_slack = problem.cmps.iter().filter(|&&c| c != Cmp::Eq).count();
        let mut n_cols = n_struct + n_slack;

        // Rows (RHS appended later); artificials added as needed.
        let mut a = vec![vec![0.0; n_cols]; m];
        let mut rhs = vec![0.0; m];
        let mut slack_col = n_struct;
        let mut slack_of_row: Vec<Option<(usize, f64)>> = vec![None; m];

        for i in 0..m {
            for (v, coeff) in problem.rows.row(i) {
                let (pos, neg) = var_cols[v];
                a[i][pos] += coeff;
                if let Some(neg) = neg {
                    a[i][neg] -= coeff;
                }
            }
            rhs[i] = problem.rhs[i];
            match problem.cmps[i] {
                Cmp::Le => {
                    a[i][slack_col] = 1.0;
                    slack_of_row[i] = Some((slack_col, 1.0));
                    slack_col += 1;
                }
                Cmp::Ge => {
                    a[i][slack_col] = -1.0;
                    slack_of_row[i] = Some((slack_col, -1.0));
                    slack_col += 1;
                }
                Cmp::Eq => {}
            }
        }

        // Normalize rows so the RHS is non-negative.
        for i in 0..m {
            if rhs[i] < 0.0 {
                for x in a[i].iter_mut() {
                    *x = -*x;
                }
                rhs[i] = -rhs[i];
                if let Some((col, sign)) = slack_of_row[i] {
                    slack_of_row[i] = Some((col, -sign));
                }
            }
        }

        // Choose an initial basis: the slack column when it enters with +1,
        // otherwise a fresh artificial variable.
        let mut basis = vec![usize::MAX; m];
        let mut artificials = Vec::new();
        for i in 0..m {
            if let Some((col, sign)) = slack_of_row[i] {
                if sign > 0.0 {
                    basis[i] = col;
                    continue;
                }
            }
            // Need an artificial column for this row.
            let art = n_cols;
            n_cols += 1;
            for row in a.iter_mut() {
                row.push(0.0);
            }
            a[i][art] = 1.0;
            basis[i] = art;
            artificials.push(art);
        }

        // Append the RHS as the last column.
        for i in 0..m {
            a[i].push(rhs[i]);
        }

        let mut is_artificial = vec![false; n_cols];
        for &art in &artificials {
            is_artificial[art] = true;
        }
        Tableau {
            original: a.clone(),
            a,
            basis,
            n_struct,
            n_cols,
            var_cols,
            artificials,
            is_artificial,
            rhs_shifted: false,
        }
    }

    /// Nudges every (near-)zero basic value by a tiny, row-unique amount —
    /// the bounded right-hand-side perturbation that breaks degenerate pivot
    /// cycles (see [`degeneracy_shift`](crate::pricing::degeneracy_shift)).
    /// Temporary: any refactorization rebuilds the RHS from the pristine
    /// matrix.
    fn shift_degenerate_basics(&mut self, round: usize) {
        let n_cols = self.n_cols;
        for (i, row) in self.a.iter_mut().enumerate() {
            if row[n_cols].abs() <= FEAS_EPS {
                row[n_cols] += crate::pricing::degeneracy_shift(i, round);
            }
        }
        self.rhs_shifted = true;
    }

    fn rhs(&self, row: usize) -> f64 {
        self.a[row][self.n_cols]
    }

    /// Runs the simplex iterations on the current tableau for the given
    /// column costs, returning `Ok(())` on optimality.
    ///
    /// The reduced-cost row is updated incrementally but recomputed from
    /// scratch periodically — and whenever optimality is about to be declared
    /// — so that floating-point drift cannot cause premature termination or
    /// spurious unboundedness on larger instances.
    ///
    /// Degeneracy defenses, in escalation order: the configured [`Pricer`]
    /// chooses entering columns, the Harris two-pass ratio test chooses
    /// numerically stable leaving rows, a streak of zero-length steps engages
    /// bounded cost perturbation, and only genuine cycling past
    /// [`bland_fallback_threshold`] demotes the solve to Bland's rule.
    ///
    /// [`Pricer`]: crate::pricing::Pricer
    fn iterate(
        &mut self,
        col_costs: &[f64],
        banned: &[usize],
        max_iters: usize,
        pricing: PricingRule,
        stats: &mut SolveStats,
    ) -> Result<(), LpStatus> {
        let m = self.a.len();
        let n_cols = self.n_cols;
        let bland_after = bland_fallback_threshold(m, n_cols);
        let refresh_period = 100;
        let mut pricer = pricing.pricer(n_cols);
        let mut is_banned = vec![false; n_cols];
        for &b in banned {
            is_banned[b] = true;
        }
        let mut degen_streak = 0usize;
        let mut shift_rounds = 0usize;
        let mut cost = self.reduced_costs(col_costs);

        for iter in 0..max_iters {
            stats.iterations += 1;
            if iter > 0 && iter % refresh_period == 0 {
                // Also washes out any live anti-degeneracy shift: the RHS is
                // rebuilt from the pristine matrix.
                self.refactorize();
                stats.refactorizations += 1;
                cost = self.reduced_costs(col_costs);
            }
            let bland = iter >= bland_after;
            if !bland && degen_streak >= crate::pricing::DEGEN_PIVOT_STREAK {
                // A cycle-length streak of zero-length steps: engage the
                // bounded right-hand-side perturbation so the tied ratio
                // tests pick distinct rows and strictly positive steps.
                shift_rounds += 1;
                self.shift_degenerate_basics(shift_rounds);
                degen_streak = 0;
            }
            let candidate = |j: usize| !is_banned[j];
            let pick = |pricer: &mut dyn crate::pricing::Pricer, cost: &[f64]| -> Option<usize> {
                if bland {
                    (0..n_cols).find(|&j| !is_banned[j] && cost[j] < -EPS)
                } else {
                    pricer.select(n_cols, &candidate, &|j| cost[j])
                }
            };
            let mut entering = pick(pricer.as_mut(), &cost);
            if entering.is_none() {
                // Confirm optimality against freshly computed reduced costs.
                cost = self.reduced_costs(col_costs);
                entering = pick(pricer.as_mut(), &cost);
                if entering.is_none() {
                    return Ok(());
                }
            }
            let entering = entering.expect("checked above");

            // The artificial guard engages only in phase 2, where artificials
            // are banned from re-entering.
            let guard = !banned.is_empty();
            let leaving = if bland {
                self.bland_ratio_test(entering, guard)
            } else {
                self.harris_ratio_test(entering, guard)
            };
            let Some(leaving) = leaving else {
                // Apparent unboundedness: refactorize (washing any live
                // shift) and recompute the reduced costs before reporting,
                // so drift cannot cause a false positive.
                self.refactorize();
                stats.refactorizations += 1;
                cost = self.reduced_costs(col_costs);
                if cost[entering] > -UNBOUNDED_EPS {
                    continue;
                }
                let has_pivot = (0..m).any(|i| {
                    self.blocking_rate(i, self.a[i][entering], !banned.is_empty()) > PIVOT_EPS
                });
                if has_pivot {
                    continue;
                }
                return Err(LpStatus::Unbounded);
            };

            let theta = self.rhs(leaving) / self.a[leaving][entering];
            if theta.abs() <= FEAS_EPS {
                degen_streak += 1;
            } else {
                degen_streak = 0;
            }
            pricer.observe_pivot(&PivotView {
                entering,
                leaving: self.basis[leaving],
                alpha_q: self.a[leaving][entering],
                n_cols,
                candidate: &candidate,
                alpha: &|j| self.a[leaving][j],
            });
            self.pivot(leaving, entering, &mut cost);
        }
        Err(LpStatus::IterationLimit)
    }

    /// The rate at which row `i`'s basic value approaches its blocking bound
    /// as the entering variable grows, or 0 when the row does not block.
    ///
    /// Ordinary rows block when the entering coefficient is positive (the
    /// basic value falls toward 0).  A row whose basic variable is a
    /// *zero-valued artificial* also blocks on a negative coefficient: the
    /// artificial would re-grow above zero, silently abandoning the row it
    /// stands for — it must leave the basis in a degenerate pivot instead.
    /// `guard_artificials` is set in phase 2 only: there a leaving artificial
    /// can never re-enter (artificials are banned from pricing), so each
    /// guard pivot permanently retires one.  In phase 1 artificials are
    /// ordinary objective variables and the guard would two-cycle them.
    fn blocking_rate(&self, i: usize, aij: f64, guard_artificials: bool) -> f64 {
        if aij > PIVOT_EPS {
            aij
        } else if guard_artificials
            && aij < -PIVOT_EPS
            && self.is_artificial[self.basis[i]]
            && self.rhs(i) <= FEAS_EPS
        {
            -aij
        } else {
            0.0
        }
    }

    /// Distance of row `i`'s basic value to the bound it blocks at
    /// (companion of [`blocking_rate`](Self::blocking_rate)).
    fn blocking_value(&self, i: usize, aij: f64) -> f64 {
        if aij > PIVOT_EPS {
            self.rhs(i)
        } else {
            -self.rhs(i)
        }
    }

    /// Two-pass Harris ratio test: pass 1 computes the minimum ratio under a
    /// feasibility tolerance relaxed by [`HARRIS_RELAX`], pass 2 picks the
    /// numerically largest pivot among the rows whose exact ratio stays
    /// within that relaxed bound.  On degenerate corners (many rows tied at
    /// ratio 0) this selects a stable pivot instead of cycling through tiny
    /// ones.
    ///
    /// [`HARRIS_RELAX`]: crate::pricing::HARRIS_RELAX
    fn harris_ratio_test(&self, entering: usize, guard_artificials: bool) -> Option<usize> {
        let m = self.a.len();
        let mut theta_relaxed = f64::INFINITY;
        for i in 0..m {
            let rate = self.blocking_rate(i, self.a[i][entering], guard_artificials);
            if rate > PIVOT_EPS {
                let relaxed = (self.blocking_value(i, self.a[i][entering])
                    + crate::pricing::HARRIS_RELAX)
                    / rate;
                if relaxed < theta_relaxed {
                    theta_relaxed = relaxed;
                }
            }
        }
        if !theta_relaxed.is_finite() {
            return None;
        }
        let mut leaving: Option<usize> = None;
        let mut best_pivot = 0.0;
        for i in 0..m {
            let aij = self.a[i][entering];
            let rate = self.blocking_rate(i, aij, guard_artificials);
            if rate > PIVOT_EPS && self.blocking_value(i, aij) / rate <= theta_relaxed {
                let better = rate > best_pivot
                    || (rate == best_pivot
                        && leaving.is_some_and(|l| self.basis[i] < self.basis[l]));
                if better {
                    best_pivot = rate;
                    leaving = Some(i);
                }
            }
        }
        leaving
    }

    /// The classic exact ratio test with smallest-basis-index tie-breaking —
    /// the form Bland's anti-cycling guarantee requires, used only in the
    /// last-resort Bland regime.
    fn bland_ratio_test(&self, entering: usize, guard_artificials: bool) -> Option<usize> {
        let m = self.a.len();
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = self.a[i][entering];
            let rate = self.blocking_rate(i, aij, guard_artificials);
            if rate > PIVOT_EPS {
                let ratio = self.blocking_value(i, aij) / rate;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.is_some_and(|l| self.basis[i] < self.basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        leaving
    }

    fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        let m = self.a.len();
        let pivot_val = self.a[row][col];
        for x in self.a[row].iter_mut() {
            *x /= pivot_val;
        }
        for i in 0..m {
            if i != row {
                let factor = self.a[i][col];
                if factor.abs() > EPS {
                    for j in 0..=self.n_cols {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                }
            }
        }
        let factor = cost[col];
        if factor.abs() > EPS {
            for j in 0..self.n_cols {
                cost[j] -= factor * self.a[row][j];
            }
            // The objective constant lives beyond the visible columns; callers
            // recompute the objective from the solution, so it is not tracked.
        }
        self.basis[row] = col;
    }

    /// Reduced-cost row for a given column cost vector under the current basis.
    fn reduced_costs(&self, col_costs: &[f64]) -> Vec<f64> {
        let m = self.a.len();
        let mut reduced = col_costs.to_vec();
        reduced.resize(self.n_cols, 0.0);
        for i in 0..m {
            let cb = col_costs.get(self.basis[i]).copied().unwrap_or(0.0);
            if cb.abs() > EPS {
                for j in 0..self.n_cols {
                    reduced[j] -= cb * self.a[i][j];
                }
            }
        }
        reduced
    }

    /// Rebuilds the tableau `B⁻¹[A | b]` from the pristine matrix and the
    /// current basis (Gauss-Jordan with partial pivoting), eliminating the
    /// floating-point drift that accumulates over many pivots.
    ///
    /// Returns `false` (leaving the tableau untouched) if the basis matrix is
    /// numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.a.len();
        let n = self.n_cols;
        let mut work = self.original.clone();
        let mut row_for_position: Vec<usize> = vec![usize::MAX; m];
        let mut used = vec![false; m];
        for i in 0..m {
            let col = self.basis[i];
            let pivot_row = (0..m).filter(|&r| !used[r]).max_by(|&a, &b| {
                work[a][col]
                    .abs()
                    .partial_cmp(&work[b][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(r) = pivot_row else { return false };
            let pivot = work[r][col];
            if pivot.abs() < 1e-11 {
                return false;
            }
            used[r] = true;
            row_for_position[i] = r;
            for j in 0..=n {
                work[r][j] /= pivot;
            }
            for rr in 0..m {
                if rr != r {
                    let factor = work[rr][col];
                    if factor != 0.0 {
                        for j in 0..=n {
                            work[rr][j] -= factor * work[r][j];
                        }
                    }
                }
            }
        }
        self.a = row_for_position.iter().map(|&r| work[r].clone()).collect();
        self.rhs_shifted = false;
        true
    }

    fn solve(mut self, problem: &LpProblem, pricing: PricingRule) -> LpSolution {
        let m = self.a.len();
        let max_iters = 20_000 + 50 * (self.n_cols + m);
        let mut stats = SolveStats::default();
        let infeasible = |stats: SolveStats| {
            LpSolution::new(LpStatus::Infeasible, 0.0, vec![0.0; problem.names.len()])
                .with_stats(stats)
        };

        // Phase 1: minimize the sum of artificial variables.
        if !self.artificials.is_empty() {
            let mut phase1_costs = vec![0.0; self.n_cols];
            for &art in &self.artificials {
                phase1_costs[art] = 1.0;
            }
            match self.iterate(&phase1_costs, &[], max_iters, pricing, &mut stats) {
                Ok(()) => {}
                Err(status) => {
                    if std::env::var_os("CMA_LP_DEBUG").is_some() {
                        eprintln!(
                            "[cma-lp] phase-1 aborted with {status}: {} rows, {} cols",
                            m, self.n_cols
                        );
                    }
                    return infeasible(stats);
                }
            }
            if self.rhs_shifted {
                // Wash the anti-degeneracy shift out before judging
                // feasibility.
                self.refactorize();
                stats.refactorizations += 1;
            }
            // Feasible iff all artificials are (numerically) zero.
            let artificial_sum: f64 = (0..m)
                .filter(|&i| self.artificials.contains(&self.basis[i]))
                .map(|i| self.rhs(i))
                .sum();
            if artificial_sum > FEAS_EPS {
                if std::env::var_os("CMA_LP_DEBUG").is_some() {
                    eprintln!(
                        "[cma-lp] phase-1 infeasible: artificial sum {artificial_sum:.3e}, \
                         {} rows, {} cols",
                        m, self.n_cols
                    );
                }
                return infeasible(stats);
            }
            // Drive remaining artificial variables out of the basis when possible.
            for i in 0..m {
                if self.artificials.contains(&self.basis[i]) {
                    if let Some(col) = (0..self.n_struct).find(|&j| self.a[i][j].abs() > 1e-7) {
                        let mut dummy = vec![0.0; self.n_cols];
                        self.pivot(i, col, &mut dummy);
                    }
                }
            }
        }

        // Phase 2: the real objective (on split columns).
        let mut col_costs = vec![0.0; self.n_cols];
        for &(v, coeff) in &problem.objective {
            let (pos, neg) = self.var_cols[v.0];
            col_costs[pos] += coeff;
            if let Some(neg) = neg {
                col_costs[neg] -= coeff;
            }
        }
        // Forbid artificial columns from re-entering the basis.
        for &art in &self.artificials {
            col_costs[art] = 0.0;
        }
        let banned = self.artificials.clone();
        let status = match self.iterate(&col_costs, &banned, max_iters, pricing, &mut stats) {
            Ok(()) => LpStatus::Optimal,
            Err(s) => s,
        };
        if self.rhs_shifted {
            // Wash the anti-degeneracy shift out before extracting values.
            self.refactorize();
            stats.refactorizations += 1;
        }

        // Extract the solution.
        let mut col_values = vec![0.0; self.n_cols];
        for i in 0..m {
            if self.basis[i] < self.n_cols {
                col_values[self.basis[i]] = self.rhs(i);
            }
        }
        let mut values = vec![0.0; problem.names.len()];
        for (v, &(pos, neg)) in self.var_cols.iter().enumerate() {
            values[v] = col_values[pos] - neg.map(|n| col_values[n]).unwrap_or(0.0);
        }
        let objective = problem
            .objective
            .iter()
            .map(|&(v, c)| c * values[v.0])
            .sum();
        LpSolution::new(status, objective, values).with_stats(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_maximization_via_minimization() {
        // max x + y s.t. x <= 2, y <= 3, x + y <= 4  => 4
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.set_objective(vec![(x, -1.0), (y, -1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, -4.0);
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8  => x=2, y=1
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Eq, 8.0);
        lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn greater_equal_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  => x=7, y=3 obj 23
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Ge, 3.0);
        lp.set_objective(vec![(x, 2.0), (y, 3.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, 23.0);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // min x s.t. x >= -5 (x free)  => x = -5
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", true);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, -5.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), -5.0);
    }

    #[test]
    fn free_variable_equality_system() {
        // x + y = 1, x - y = 5, both free: x = 3, y = -2.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", true);
        let y = lp.add_var("y", true);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 5.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), -2.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        lp.set_objective(vec![(x, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        lp.set_objective(vec![(x, -1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // min x s.t. x + x >= 6  => x = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0), (x, 1.0)], Cmp::Ge, 6.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1  => y = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Cmp::Le, -4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(y, 1.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate corner; must not cycle.
        let mut lp = LpProblem::new();
        let x1 = lp.add_var("x1", false);
        let x2 = lp.add_var("x2", false);
        let x3 = lp.add_var("x3", false);
        let x4 = lp.add_var("x4", false);
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(vec![(x1, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(x1, -10.0), (x2, 57.0), (x3, 9.0), (x4, 24.0)]);
        let sol = lp.solve();
        assert!(sol.is_optimal());
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn larger_random_feasible_problems_have_bounded_residuals() {
        // Deterministic pseudo-random LPs: minimize sum of vars subject to
        // cover constraints; verify feasibility of the returned point.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 1000.0
        };
        for _ in 0..5 {
            let mut lp = LpProblem::new();
            let vars: Vec<_> = (0..12)
                .map(|i| lp.add_var(format!("v{i}"), false))
                .collect();
            let mut rows = Vec::new();
            for _ in 0..8 {
                let terms: Vec<_> = vars.iter().map(|&v| (v, 0.2 + next())).collect();
                let rhs = 1.0 + 3.0 * next();
                rows.push((terms.clone(), rhs));
                lp.add_constraint(terms, Cmp::Ge, rhs);
            }
            lp.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
            let sol = lp.solve();
            assert!(sol.is_optimal());
            for (terms, rhs) in rows {
                let lhs: f64 = terms.iter().map(|&(v, c)| c * sol.value(v)).sum();
                assert!(lhs >= rhs - 1e-6, "constraint violated: {lhs} < {rhs}");
            }
            for &v in &vars {
                assert!(sol.value(v) >= -1e-9);
            }
        }
    }

    #[test]
    fn solve_stats_count_iterations_under_every_pricing_rule() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 — needs phase 1 + pivots.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
        let mut objectives = Vec::new();
        for rule in PricingRule::ALL {
            let sol = lp.solve_with(rule);
            assert!(sol.is_optimal(), "{rule}: {:?}", sol.status);
            assert!(sol.stats.iterations > 0, "{rule} reported no iterations");
            // The raw dense solve has no presolve stage.
            assert_eq!(sol.stats.presolve_rows, 0);
            objectives.push(sol.objective);
        }
        for pair in objectives.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-9,
                "pricing changed the optimum"
            );
        }
        let merged = SolveStats {
            iterations: 2,
            refactorizations: 1,
            presolve_rows: 3,
            presolve_cols: 4,
        }
        .merge(&SolveStats {
            iterations: 5,
            ..SolveStats::default()
        });
        assert_eq!(merged.iterations, 7);
        assert_eq!(merged.presolve_cols, 4);
    }

    #[test]
    fn solution_accessors() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.num_vars(), 1);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        assert_eq!(lp.num_constraints(), 1);
        lp.set_objective(vec![(x, -1.0)]);
        let sol = lp.solve();
        assert_eq!(sol.values().len(), 1);
        assert_close(sol.value(x), 5.0);
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
    }
}
