//! The unified simplex core shared by every built-in backend.
//!
//! Until PR 4 the crate carried two parallel implementations of the same
//! iteration loop — a dense tableau solver and a sparse revised simplex —
//! and every pivoting feature (Harris ratio test, anti-degeneracy
//! perturbation, artificial-pivot guard) had to be written twice.
//! [`SimplexCore`] is the single remaining loop, parameterized along two
//! axes:
//!
//! * the **matrix representation** ([`ColumnStore`]): sparse `(row, coeff)`
//!   lists (the session backend) or dense column vectors (the reference
//!   configuration the dense backend solves with);
//! * the **basis factorization** ([`Factorization`](crate::factor)):
//!   an explicit dense `B⁻¹` or a Markowitz LU with eta-file updates,
//!   chosen per solve via [`SolverTuning::factor`](crate::SolverTuning).
//!
//! The core is stateful and implements the full [`LpSession`] contract:
//!
//! * **re-minimize** — a new objective restarts phase 2 from the previous
//!   optimal basis and skips phase 1 entirely;
//! * **incremental rows** — an appended row extends the basis in place with
//!   the row's slack (or an artificial for equality rows).  Under the
//!   default [`WarmStrategy::Dual`], a row the current point violates makes
//!   its new basic variable *negative* and the next solve restores primal
//!   feasibility with **dual-simplex pivots** from the still-dual-feasible
//!   optimal basis — a handful of pivots instead of a phase-1 restart.
//!   [`WarmStrategy::Phase1`] keeps the legacy artificial-plus-phase-1 path;
//! * **incremental columns** — a new variable enters nonbasic at zero and
//!   disturbs nothing.
//!
//! Numerical discipline is unchanged from the pre-seam solvers: pluggable
//! pricing (devex by default), the Harris two-pass ratio test with a bounded
//! right-hand-side perturbation against degenerate cycling, Bland's rule as
//! the size-scaled last resort, periodic refactorization from the pristine
//! columns, and fresh-refactorized confirmation before optimality or
//! unboundedness is declared.  The dual-simplex driver gets the same
//! treatment: stability-first ratio tie-breaking, a Bland-style fallback,
//! and a hard cap after which the solve falls back to a cold phase-1 start
//! rather than risk a wrong verdict.

// Simplex kernels index several parallel vectors (directions, basic values)
// at once; indexed loops are the clearest form here.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;
use std::time::Instant;

use crate::backend::LpSession;
use crate::factor::{FactorKind, Factorization, KernelWs, WarmStrategy};
use crate::pricing::{
    bland_fallback_threshold, DualPricing, DualRatio, PivotView, PricingRule, SolveBudget,
    SolverTuning,
};
use crate::simplex::{Cmp, LpProblem, LpSolution, LpStatus, LpVarId, SolveStats};

const EPS: f64 = 1e-9;
/// Minimum magnitude accepted for a pivot element.
const PIVOT_EPS: f64 = 1e-7;
/// Tolerance used when confirming unboundedness against fresh reduced costs.
const UNBOUNDED_EPS: f64 = 1e-6;
const FEAS_EPS: f64 = 1e-6;
/// Reduced costs this far below zero disqualify the warm basis from a dual
/// re-solve (numerics drifted; fall back to a cold start).
const DUAL_FEAS_EPS: f64 = 1e-6;
/// Below this many rows the dual steepest-edge seeding btrans run
/// sequentially — a pool fan-out cannot amortize its queue traffic.
const PAR_SEED_MIN_ROWS: usize = 64;

/// What a standard-form column stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    /// A (split) problem variable.
    Structural,
    /// A slack variable of an inequality row.
    Slack,
    /// An artificial variable (phase-1 only; banned from phase 2 and from
    /// entering during dual pivots).
    Artificial,
}

/// The constraint columns in standard form — the matrix-representation axis
/// of the core.
///
/// `Sparse` stores one `(row, coeff)` list per column (what the session
/// backend uses) plus a row-major mirror of the same entries — the
/// adjacency the devex α-scatter walks when the pivot row is hyper-sparse;
/// `Dense` stores plain column vectors, the thin configuration the dense
/// reference backend runs the same core with.
#[derive(Debug, Clone)]
pub(crate) enum ColumnStore {
    Sparse {
        cols: Vec<Vec<(usize, f64)>>,
        rows: Vec<Vec<(u32, f64)>>,
    },
    Dense(Vec<Vec<f64>>),
}

impl ColumnStore {
    /// An empty store of the requested representation.
    pub(crate) fn new(dense: bool) -> ColumnStore {
        if dense {
            ColumnStore::Dense(Vec::new())
        } else {
            ColumnStore::Sparse {
                cols: Vec::new(),
                rows: Vec::new(),
            }
        }
    }

    /// Number of columns.
    pub(crate) fn num_cols(&self) -> usize {
        match self {
            ColumnStore::Sparse { cols, .. } => cols.len(),
            ColumnStore::Dense(cols) => cols.len(),
        }
    }

    /// Appends an empty column, returning its index.
    pub(crate) fn push_col(&mut self) -> usize {
        match self {
            ColumnStore::Sparse { cols, .. } => {
                cols.push(Vec::new());
                cols.len() - 1
            }
            ColumnStore::Dense(cols) => {
                cols.push(Vec::new());
                cols.len() - 1
            }
        }
    }

    /// Adds `val` to entry (`row`, `j`).
    pub(crate) fn push_entry(&mut self, j: usize, row: usize, val: f64) {
        match self {
            ColumnStore::Sparse { cols, rows } => {
                cols[j].push((row, val));
                if rows.len() <= row {
                    rows.resize_with(row + 1, Vec::new);
                }
                rows[row].push((j as u32, val));
            }
            ColumnStore::Dense(cols) => {
                let col = &mut cols[j];
                if col.len() <= row {
                    col.resize(row + 1, 0.0);
                }
                col[row] += val;
            }
        }
    }

    /// Visits the nonzero `(row, value)` entries of column `j`.
    pub(crate) fn for_each(&self, j: usize, f: &mut dyn FnMut(usize, f64)) {
        match self {
            ColumnStore::Sparse { cols, .. } => {
                for &(r, a) in &cols[j] {
                    f(r, a);
                }
            }
            ColumnStore::Dense(cols) => {
                for (r, &a) in cols[j].iter().enumerate() {
                    if a != 0.0 {
                        f(r, a);
                    }
                }
            }
        }
    }

    /// The row-major mirror of the sparse store (`None` for the dense
    /// store, which has no scatter path to feed).
    pub(crate) fn rows_adjacency(&self) -> Option<&[Vec<(u32, f64)>]> {
        match self {
            ColumnStore::Sparse { rows, .. } => Some(rows),
            ColumnStore::Dense(_) => None,
        }
    }

    /// The dot product of column `j` with a row-indexed vector.
    fn dot(&self, j: usize, x: &[f64]) -> f64 {
        match self {
            ColumnStore::Sparse { cols, .. } => cols[j].iter().map(|&(r, a)| a * x[r]).sum(),
            ColumnStore::Dense(cols) => cols[j].iter().zip(x).map(|(a, xr)| a * xr).sum(),
        }
    }
}

/// Outcome of the dual-simplex feasibility restoration.
enum DualOutcome {
    /// Primal feasibility restored; the basis is optimal for the old costs.
    Restored,
    /// A violated row admits no entering column: the system is primal
    /// infeasible (confirmed by a cold solve before it is reported).
    Infeasible,
    /// Internal iteration cap or numerics — restart cold instead.
    GaveUp,
    /// The session's [`SolveBudget`] ran out mid-restoration.  Unlike
    /// `GaveUp`, this must *not* restart cold (that would burn more time the
    /// caller no longer has) — the minimize reports
    /// [`LpStatus::BudgetExhausted`] instead.
    Exhausted,
}

/// The unified simplex state (see the [module docs](self)).
pub(crate) struct SimplexCore {
    /// Problem variable → (positive column, optional negative column).
    var_cols: Vec<(usize, Option<usize>)>,
    /// Standard-form constraint columns.
    cols: ColumnStore,
    kind: Vec<ColKind>,
    /// Per-column upper bound (`f64::INFINITY` unless a singleton `≤` row
    /// was absorbed at initial load; every column's lower bound is 0).
    up: Vec<f64>,
    /// Nonbasic-at-upper flags; a set flag always implies the column is
    /// nonbasic, and contributes `up[j]·A_j` to the effective right-hand
    /// side.
    at_upper: Vec<bool>,
    /// Singleton `≤` rows folded into `up` at initial load — they occupy no
    /// constraint row but still count toward `num_constraints`.
    absorbed_rows: usize,
    /// Absorb eligible singleton rows into column bounds (true only while
    /// `open_with` loads the initial rows; incremental rows stay rows so the
    /// warm-extension bookkeeping never changes shape).
    absorb_bounds: bool,
    /// Right-hand sides, sign-normalized at row entry so the initial basic
    /// value of every row is non-negative.
    b: Vec<f64>,
    /// Per-row column forming the from-scratch initial basis (slack with
    /// coefficient +1, or an artificial).
    init_basis: Vec<usize>,
    basis: Vec<usize>,
    is_basic: Vec<bool>,
    /// The pluggable basis factorization.
    factor: Box<dyn Factorization>,
    /// The factorization no longer matches `basis` (declined update or row
    /// extension); rebuilt from pristine columns before the next pivots.
    factor_stale: bool,
    /// Current basic values, aligned with `basis`.  May carry *negative*
    /// entries after warm row extension under the dual strategy.
    xb: Vec<f64>,
    /// Whether `basis`/`factor`/`xb` describe the state left by an
    /// `Optimal` minimize (false forces a cold rebuild).
    warm: bool,
    /// Whether incrementally added rows introduced artificials that still
    /// carry positive values (phase 1 over them runs at the next minimize;
    /// [`WarmStrategy::Phase1`] only).
    needs_phase1: bool,
    /// Standard-form costs of the last successful minimize — the objective
    /// the warm basis is dual feasible for, which is what the dual-simplex
    /// restoration prices with.
    last_costs: Option<Vec<f64>>,
    /// Lifetime pivot counter (diagnostics only).
    pivots: usize,
    /// Pivots applied since the factorization was last rebuilt from pristine
    /// columns.  Gates the periodic refreshes.
    stale_pivots: usize,
    /// Pricing rule used to choose entering columns.
    pricing: PricingRule,
    /// Leaving-row pricing used by the dual-simplex restoration.
    dual_pricing: DualPricing,
    /// Dual ratio test variant (legacy single-breakpoint vs bound-flipping).
    dual_ratio: DualRatio,
    /// Warm re-solve strategy for incrementally added rows.
    warm_strategy: WarmStrategy,
    /// Per-`minimize` solver counters (reset at each `minimize`).
    stats: SolveStats,
    /// Whether `xb` currently carries an anti-degeneracy shift (washed out
    /// by the next refactorization; must be washed before values are
    /// extracted).
    xb_shifted: bool,
    /// The session's resource budget ([`SolverTuning::budget`]).  The
    /// deadline is absolute and the spend counters below are *never* reset,
    /// so the budget covers the session's whole lifetime — every minimize,
    /// warm re-solve, and in-session extension draws from the same pool.
    budget: SolveBudget,
    /// Lifetime iterations charged against `budget.max_iters` (unlike
    /// `stats.iterations`, which resets per minimize).
    budget_iters: usize,
    /// Lifetime refactorizations charged against
    /// `budget.max_refactorizations`.
    budget_refactorizations: usize,
    /// How often (in loop iterations) the wall-clock deadline is polled
    /// (from [`SolverTuning::deadline_check_period`], clamped to ≥ 1).
    deadline_check_period: usize,
    /// `factor.compactions()` at the start of the current minimize; the
    /// per-solve [`SolveStats::eta_compactions`] is the delta.
    compaction_base: usize,
    /// The session-lifetime kernel workspace: every ftran/btran of the hot
    /// loop writes into these buffers, so pivots allocate nothing.
    ws: KernelWs,
    /// Reusable staging buffer for sparse right-hand sides (column entries,
    /// basic costs, bound-flip batches).
    rhs_buf: Vec<(usize, f64)>,
    /// Devex α-scatter workspace: accumulated pivot-row entries by column
    /// (all-zero outside `alpha_touched` between pivots).
    alpha_scratch: Vec<f64>,
    /// Columns the last α-scatter wrote (may contain duplicates).
    alpha_touched: Vec<usize>,
    /// Sorted, deduplicated copy of the pivot row's support (scratch).
    alpha_rows: Vec<usize>,
    /// `ws.counters()` at the start of the current minimize; the per-solve
    /// kernel counters in [`SolveStats`] are deltas against it.
    ws_base: (u64, u64, u64, u64),
}

impl SimplexCore {
    /// Opens a core over the problem's variables and constraint rows with
    /// the given representation and tuning (presolve is the backend
    /// wrapper's business and ignored here).
    pub(crate) fn open_with(
        problem: &LpProblem,
        tuning: &SolverTuning,
        dense: bool,
    ) -> SimplexCore {
        let mut core = SimplexCore {
            var_cols: Vec::new(),
            cols: ColumnStore::new(dense),
            kind: Vec::new(),
            up: Vec::new(),
            at_upper: Vec::new(),
            absorbed_rows: 0,
            absorb_bounds: true,
            b: Vec::new(),
            init_basis: Vec::new(),
            basis: Vec::new(),
            is_basic: Vec::new(),
            factor: tuning.factor.instantiate(),
            factor_stale: false,
            xb: Vec::new(),
            warm: false,
            needs_phase1: false,
            last_costs: None,
            pivots: 0,
            stale_pivots: 0,
            pricing: tuning.pricing,
            dual_pricing: tuning.dual_pricing,
            dual_ratio: tuning.dual_ratio,
            warm_strategy: tuning.warm,
            stats: SolveStats::default(),
            xb_shifted: false,
            budget: tuning.budget,
            budget_iters: 0,
            budget_refactorizations: 0,
            deadline_check_period: tuning.deadline_check_period.max(1),
            compaction_base: 0,
            ws: KernelWs::default(),
            rhs_buf: Vec::new(),
            alpha_scratch: Vec::new(),
            alpha_touched: Vec::new(),
            alpha_rows: Vec::new(),
            ws_base: (0, 0, 0, 0),
        };
        for v in 0..problem.num_vars() {
            core.push_var(problem.is_free(LpVarId::from_index(v)));
        }
        for i in 0..problem.num_constraints() {
            let terms: Vec<(LpVarId, f64)> = problem.constraint_terms(i).collect();
            core.append_row(&terms, problem.cmp(i), problem.rhs(i));
        }
        core.absorb_bounds = false;
        core
    }

    /// Solves one problem in place: open + a single `minimize` of the
    /// problem's own objective.  This is the dense reference path.
    pub(crate) fn solve_problem(
        problem: &LpProblem,
        tuning: &SolverTuning,
        dense: bool,
    ) -> LpSolution {
        let mut core = SimplexCore::open_with(problem, tuning, dense);
        core.minimize(problem.objective())
    }

    fn push_var(&mut self, free: bool) -> LpVarId {
        let pos = self.new_col(ColKind::Structural);
        let neg = free.then(|| self.new_col(ColKind::Structural));
        self.var_cols.push((pos, neg));
        LpVarId::from_index(self.var_cols.len() - 1)
    }

    fn new_col(&mut self, kind: ColKind) -> usize {
        let j = self.cols.push_col();
        self.kind.push(kind);
        self.is_basic.push(false);
        self.up.push(f64::INFINITY);
        self.at_upper.push(false);
        j
    }

    /// Splits free variables and accumulates a constraint row into per-column
    /// entries (sorted and deduplicated by the map).
    fn split_row(&self, terms: &[(LpVarId, f64)]) -> BTreeMap<usize, f64> {
        let mut entries: BTreeMap<usize, f64> = BTreeMap::new();
        for &(v, coeff) in terms {
            let (pos, neg) = self.var_cols[v.index()];
            *entries.entry(pos).or_insert(0.0) += coeff;
            if let Some(neg) = neg {
                *entries.entry(neg).or_insert(0.0) -= coeff;
            }
        }
        entries.retain(|_, v| *v != 0.0);
        entries
    }

    /// Appends a row in standard form (sign-normalized, slack attached, an
    /// artificial created when the slack cannot seed the initial basis).
    /// When the session is warm, the basis is extended in place.
    fn append_row(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        let mut entries = self.split_row(terms);
        let (mut rhs, mut cmp) = (rhs, cmp);
        if rhs < 0.0 {
            for v in entries.values_mut() {
                *v = -*v;
            }
            rhs = -rhs;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        // A singleton `a·x ≤ rhs` row with `a > 0` at initial load is a plain
        // upper bound: fold it into `up` instead of spending a constraint
        // row, a slack column, and ratio-test work on it.  (Free variables
        // split into two columns and never qualify; incremental rows stay
        // rows so warm extension keeps its shape.)
        if self.absorb_bounds && cmp == Cmp::Le && entries.len() == 1 {
            let (&col, &a) = entries.iter().next().expect("len checked");
            if a > EPS && self.kind[col] == ColKind::Structural {
                let bound = rhs / a;
                if bound < self.up[col] {
                    self.up[col] = bound;
                }
                self.absorbed_rows += 1;
                return;
            }
        }
        let row = self.b.len();
        for (&col, &val) in &entries {
            self.cols.push_entry(col, row, val);
        }
        let slack = match cmp {
            Cmp::Le | Cmp::Ge => {
                let coeff = if cmp == Cmp::Le { 1.0 } else { -1.0 };
                let col = self.new_col(ColKind::Slack);
                self.cols.push_entry(col, row, coeff);
                Some((col, coeff))
            }
            Cmp::Eq => None,
        };
        let init_col = match slack {
            Some((col, coeff)) if coeff > 0.0 => col,
            _ => {
                let art = self.new_col(ColKind::Artificial);
                self.cols.push_entry(art, row, 1.0);
                art
            }
        };
        self.b.push(rhs);
        self.init_basis.push(init_col);

        if self.warm {
            self.extend_basis(row, &entries, slack, init_col, rhs);
        }
    }

    /// Extends the warm basis with a freshly appended row.
    ///
    /// Under [`WarmStrategy::Dual`] the new basic variable is the row's own
    /// slack (or, for equality rows, an artificial whose coefficient sign
    /// makes its value non-positive); a violated row simply leaves that
    /// basic *negative*, to be repaired by dual pivots at the next solve.
    /// Under [`WarmStrategy::Phase1`] a violated row gets an artificial
    /// absorbing the violation and phase 1 runs at the next solve.
    fn extend_basis(
        &mut self,
        row: usize,
        entries: &BTreeMap<usize, f64>,
        slack: Option<(usize, f64)>,
        init_col: usize,
        rhs: f64,
    ) {
        // Current point, per column: basic values, nonbasic-at-upper columns
        // at their bound, everything else zero.
        let lhs: f64 = entries
            .iter()
            .map(|(&col, &a)| {
                if self.is_basic[col] {
                    let k = self.basis.iter().position(|&c| c == col).expect("basic");
                    a * self.xb[k]
                } else if self.at_upper[col] {
                    a * self.up[col]
                } else {
                    0.0
                }
            })
            .sum();
        let resid = rhs - lhs;

        // Choose the entering basic column and its coefficient in this row.
        let (basic_col, coeff, value) = match self.warm_strategy {
            WarmStrategy::Dual => match slack {
                // Slack rows: the slack is always basic; a violated row
                // shows as a negative slack value.
                Some((col, sc)) => (col, sc, resid / sc),
                // Equality rows: an artificial whose sign keeps the basic
                // value ≤ 0, so the dual pivots drive it to its bound (0)
                // and retire it.  `init_col` (coefficient +1) serves when
                // the residual is non-positive; a violated direction gets a
                // fresh −1 artificial.
                None if resid <= EPS => (init_col, 1.0, resid),
                None => {
                    let art = self.new_col(ColKind::Artificial);
                    self.cols.push_entry(art, row, -1.0);
                    (art, -1.0, -resid)
                }
            },
            WarmStrategy::Phase1 => {
                let (col, c) = match slack {
                    Some((col, sc)) if resid / sc >= -EPS => (col, sc),
                    _ if self.kind[init_col] == ColKind::Artificial && resid >= -EPS => {
                        (init_col, 1.0)
                    }
                    _ => {
                        // The current point violates the row in the
                        // direction no existing column can absorb: add an
                        // artificial of the matching sign.
                        let sign = if resid >= 0.0 { 1.0 } else { -1.0 };
                        let art = self.new_col(ColKind::Artificial);
                        self.cols.push_entry(art, row, sign);
                        (art, sign)
                    }
                };
                (col, c, (resid / c).max(0.0))
            }
        };
        if self.warm_strategy == WarmStrategy::Phase1
            && self.kind[basic_col] == ColKind::Artificial
            && value > FEAS_EPS
        {
            self.needs_phase1 = true;
        }

        // Border the factorization.  `w` holds the new row's coefficients at
        // the old basic columns, by basis position.
        let w: Vec<f64> = self
            .basis
            .iter()
            .map(|&col| entries.get(&col).copied().unwrap_or(0.0))
            .collect();
        if self.factor.extend_row(&w, coeff).is_err() {
            // Declined (LU, or a near-singular border pivot): the basis
            // bookkeeping still grows and the factorization is rebuilt from
            // pristine columns before the next solve.
            self.factor_stale = true;
        }
        self.basis.push(basic_col);
        self.is_basic[basic_col] = true;
        self.xb.push(value);
    }

    /// Resets the solver state to the from-scratch initial basis.
    fn rebuild(&mut self) {
        let m = self.b.len();
        self.basis = self.init_basis.clone();
        for flag in self.is_basic.iter_mut() {
            *flag = false;
        }
        for flag in self.at_upper.iter_mut() {
            *flag = false;
        }
        for &col in &self.basis {
            self.is_basic[col] = true;
        }
        // The initial basis is one slack/artificial with coefficient +1 per
        // row: B = I, so a refactorization is exact and cheap.
        self.factor.refactorize(m, &self.basis, &self.cols);
        self.factor_stale = false;
        self.xb = self.b.clone();
        self.stale_pivots = 0;
        self.xb_shifted = false;
        self.needs_phase1 = self.kind.contains(&ColKind::Artificial);
        self.last_costs = None;
    }

    /// `y = c_Bᵀ B⁻¹` via btran, into the caller's reusable buffer.  The
    /// basic-cost right-hand side is loaded *sparse* — most basics (slacks,
    /// retired artificials, off-objective structurals) cost 0 — so the
    /// hyper-sparse kernel engages on shallow objectives.
    pub(crate) fn dual_prices_into(&mut self, col_costs: &[f64], y: &mut Vec<f64>) {
        let m = self.basis.len();
        let mut entries = std::mem::take(&mut self.rhs_buf);
        entries.clear();
        for (i, &col) in self.basis.iter().enumerate() {
            let c = col_costs.get(col).copied().unwrap_or(0.0);
            if c != 0.0 {
                entries.push((i, c));
            }
        }
        self.ws.load_sparse(&entries, m);
        self.rhs_buf = entries;
        let t = Instant::now();
        self.factor.btran_ws(&mut self.ws);
        self.stats.btran_ns += t.elapsed().as_nanos() as u64;
        self.ws.copy_sol_into(y);
    }

    /// Reduced cost of one column under dual prices `y`.
    fn reduced_cost(&self, j: usize, col_costs: &[f64], y: &[f64]) -> f64 {
        col_costs[j] - self.cols.dot(j, y)
    }

    /// `d = B⁻¹ A_j` via the sparse-rhs ftran kernel, into the caller's
    /// reusable buffer (timed into the per-solve profile).
    pub(crate) fn direction_into(&mut self, j: usize, out: &mut Vec<f64>) {
        let mut entries = std::mem::take(&mut self.rhs_buf);
        entries.clear();
        self.cols.for_each(j, &mut |r, v| entries.push((r, v)));
        self.ws.load_sparse(&entries, self.basis.len());
        self.rhs_buf = entries;
        let t = Instant::now();
        self.factor.ftran_ws(&mut self.ws);
        self.stats.ftran_ns += t.elapsed().as_nanos() as u64;
        self.ws.copy_sol_into(out);
    }

    /// Row `p` of `B⁻¹` (a row copy under the dense inverse, a hyper-sparse
    /// unit-rhs btran under LU — timed as btran work), into the caller's
    /// reusable buffer.
    pub(crate) fn inverse_row_into(&mut self, p: usize, out: &mut Vec<f64>) {
        let t = Instant::now();
        self.factor.inverse_row_ws(p, &mut self.ws);
        self.stats.btran_ns += t.elapsed().as_nanos() as u64;
        self.ws.copy_sol_into(out);
    }

    /// Performs the basis change bookkeeping and the factorization update.
    ///
    /// `enter_from` is the entering column's current (nonbasic) value — 0 or
    /// its upper bound — and `delta` the signed change of that value, so the
    /// entering basic value is `enter_from + delta`.  `leave_at_upper`
    /// records which bound the leaving column exits at.
    fn pivot_bounded(
        &mut self,
        p: usize,
        entering: usize,
        d: &[f64],
        enter_from: f64,
        delta: f64,
        leave_at_upper: bool,
    ) {
        let m = self.basis.len();
        for i in 0..m {
            if i != p {
                self.xb[i] -= delta * d[i];
            }
        }
        self.xb[p] = enter_from + delta;
        let leaving = self.basis[p];
        self.is_basic[leaving] = false;
        self.at_upper[leaving] = leave_at_upper;
        self.is_basic[entering] = true;
        self.at_upper[entering] = false;
        self.basis[p] = entering;
        if self.factor.update(p, d).is_ok() {
            if self.factor.kind() == FactorKind::Lu {
                self.stats.etas += 1;
                self.stats.eta_len = self.stats.eta_len.max(self.factor.eta_count());
            }
        } else {
            // Unstable or saturated update: rebuild from pristine columns
            // before the next pivots.
            self.factor_stale = true;
        }
        self.pivots += 1;
        self.stale_pivots = self.stale_pivots.saturating_add(1);
    }

    /// Nudges every (near-)zero basic value by a tiny, row-unique amount —
    /// the bounded right-hand-side perturbation that breaks degenerate pivot
    /// cycles (see [`degeneracy_shift`](crate::pricing::degeneracy_shift)).
    /// Temporary: any refactorization recomputes `xb` from the pristine
    /// right-hand sides.
    fn shift_degenerate_basics(&mut self, round: usize) {
        for (i, x) in self.xb.iter_mut().enumerate() {
            if x.abs() <= FEAS_EPS {
                *x += crate::pricing::degeneracy_shift(i, round);
            }
        }
        self.xb_shifted = true;
    }

    /// The right-hand side with every nonbasic-at-upper column's
    /// contribution subtracted: `b_eff = b − Σ up_j·A_j` over set
    /// `at_upper` flags.
    fn effective_b(&self) -> Vec<f64> {
        let mut beff = self.b.clone();
        for (j, &at_up) in self.at_upper.iter().enumerate() {
            if at_up {
                let u = self.up[j];
                self.cols.for_each(j, &mut |r, a| beff[r] -= u * a);
            }
        }
        beff
    }

    /// Rebuilds the factorization from the pristine basis columns and
    /// recomputes `x_B = B⁻¹ b_eff`; returns `false` on a numerically
    /// singular basis, leaving the state untouched.
    fn refactorize(&mut self) -> bool {
        let m = self.basis.len();
        if !self.factor.refactorize(m, &self.basis, &self.cols) {
            return false;
        }
        let beff = self.effective_b();
        self.ws.load_dense(&beff);
        let t = Instant::now();
        self.factor.ftran_ws(&mut self.ws);
        self.stats.ftran_ns += t.elapsed().as_nanos() as u64;
        self.ws.copy_sol_into(&mut self.xb);
        self.stale_pivots = 0;
        self.stats.refactorizations += 1;
        self.budget_refactorizations += 1;
        self.xb_shifted = false;
        self.factor_stale = false;
        true
    }

    /// Direct wall-clock deadline poll, used right after the expensive
    /// refactorization/compaction points where a whole refresh just ran —
    /// the per-pivot period check could otherwise let a hostile deadline
    /// slip by a full period of heavy work.
    fn deadline_hit(&self) -> bool {
        !self.budget.is_unlimited() && self.budget.deadline_passed()
    }

    /// Whether the session's budget has run out, checked cooperatively at
    /// every pivot (iteration/refactorization caps) and every
    /// [`SolverTuning::deadline_check_period`]-th pivot of a loop (the wall
    /// clock — `Instant::now()` per pivot would dominate cheap pivots).
    fn budget_exhausted(&self, iter_in_loop: usize) -> bool {
        if self.budget.is_unlimited() {
            return false;
        }
        self.budget.iters_remaining(self.budget_iters) == 0
            || self
                .budget
                .refactorizations_remaining(self.budget_refactorizations)
                == 0
            || (iter_in_loop.is_multiple_of(self.deadline_check_period)
                && self.budget.deadline_passed())
    }

    /// Runs primal simplex iterations for the given standard-form column
    /// costs.  `ban_artificials` excludes artificial columns from entering
    /// (phase 2).
    fn iterate(
        &mut self,
        col_costs: &[f64],
        ban_artificials: bool,
        max_iters: usize,
    ) -> Result<(), LpStatus> {
        let debug = std::env::var_os("CMA_LP_DEBUG").is_some();
        let start = if debug {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let before = self.pivots;
        let result = self.iterate_inner(col_costs, ban_artificials, max_iters);
        if let Some(start) = start {
            eprintln!(
                "[cma-lp core] phase({}) {:?} in {:.1} ms: {} rows, {} cols, {} pivots, {} etas",
                if ban_artificials { 2 } else { 1 },
                result,
                start.elapsed().as_secs_f64() * 1e3,
                self.basis.len(),
                self.cols.num_cols(),
                self.pivots - before,
                self.factor.eta_count(),
            );
        }
        result
    }

    fn iterate_inner(
        &mut self,
        col_costs: &[f64],
        ban_artificials: bool,
        max_iters: usize,
    ) -> Result<(), LpStatus> {
        let bland_after = bland_fallback_threshold(self.basis.len(), self.cols.num_cols());
        // How many pivots of drift the factorization may accumulate before
        // it is recomputed from the pristine columns — both periodically and
        // before declaring optimality.
        let refresh_period = 100;
        let mut pricer = self.pricing.pricer(self.cols.num_cols());
        let mut degen_streak = 0usize;
        let mut shift_rounds = 0usize;
        // Dual prices are maintained incrementally (one btran per pivot) and
        // recomputed from scratch at refresh points and before any
        // optimality/unboundedness verdict.  The direction/pivot-row/price
        // buffers below are the loop's only vectors: allocated (at most)
        // once per phase, written in place by the workspace kernels.
        let mut y: Vec<f64> = Vec::new();
        self.dual_prices_into(col_costs, &mut y);
        let mut d: Vec<f64> = Vec::new();
        let mut rho: Vec<f64> = Vec::new();
        // Chooses the entering column by *bound-adjusted* reduced cost: an
        // at-lower column improves when its reduced cost is negative, an
        // at-upper column when it is positive — the pricer sees the negated
        // value for the latter so "most negative wins" covers both.
        // Zero-width columns are fixed and never enter.  Falls back to
        // Bland's first improving column in the last-resort regime.
        let pick = |state: &SimplexCore,
                    pricer: &mut dyn crate::pricing::Pricer,
                    costs: &[f64],
                    y: &[f64],
                    bland: bool|
         -> Option<usize> {
            let candidate = |j: usize| {
                !(state.is_basic[j]
                    || ban_artificials && state.kind[j] == ColKind::Artificial
                    || state.up[j] <= EPS)
            };
            let adj_rc = |j: usize| {
                let rc = state.reduced_cost(j, costs, y);
                if state.at_upper[j] {
                    -rc
                } else {
                    rc
                }
            };
            if bland {
                (0..state.cols.num_cols()).find(|&j| candidate(j) && adj_rc(j) < -EPS)
            } else {
                pricer.select(state.cols.num_cols(), &candidate, &adj_rc)
            }
        };
        for iter in 0..max_iters {
            self.stats.iterations += 1;
            self.budget_iters += 1;
            if self.budget_exhausted(iter) {
                return Err(LpStatus::BudgetExhausted);
            }
            if self.factor_stale || self.stale_pivots >= refresh_period {
                // Also washes out any live anti-degeneracy shift: the basic
                // values are recomputed from the pristine right-hand sides.
                self.refactorize();
                if self.deadline_hit() {
                    return Err(LpStatus::BudgetExhausted);
                }
                self.dual_prices_into(col_costs, &mut y);
            }
            let bland = iter >= bland_after;
            if !bland && degen_streak >= crate::pricing::DEGEN_PIVOT_STREAK {
                // A cycle-length streak of zero-length steps: engage the
                // bounded right-hand-side perturbation so the tied ratio
                // tests pick distinct rows and strictly positive steps.
                shift_rounds += 1;
                self.shift_degenerate_basics(shift_rounds);
                degen_streak = 0;
            }
            let t_price = Instant::now();
            let mut entering = pick(self, pricer.as_mut(), col_costs, &y, bland);
            self.stats.pricing_ns += t_price.elapsed().as_nanos() as u64;
            if entering.is_none() {
                // Recompute the incrementally maintained duals before
                // trusting the verdict, and — when a full period of drift
                // has accumulated — refactorize the basis too.
                if self.stale_pivots >= refresh_period {
                    self.refactorize();
                }
                self.dual_prices_into(col_costs, &mut y);
                let t_price = Instant::now();
                entering = pick(self, pricer.as_mut(), col_costs, &y, bland);
                self.stats.pricing_ns += t_price.elapsed().as_nanos() as u64;
                if entering.is_none() {
                    return Ok(());
                }
            }
            let entering = entering.expect("checked above");
            // Direction of motion: an at-upper entering column *decreases*
            // toward its lower bound, so every basic response flips sign.
            let dir = if self.at_upper[entering] { -1.0 } else { 1.0 };

            self.direction_into(entering, &mut d);
            let t_ratio = Instant::now();
            let leaving = if bland {
                self.ratio_test(&d, dir, ban_artificials)
            } else {
                self.harris_ratio_test(&d, dir, ban_artificials)
            };
            self.stats.ratio_ns += t_ratio.elapsed().as_nanos() as u64;
            // Exact step to the blocking row, if any.
            let theta_row = leaving.map(|p| {
                self.blocking_value(p, dir * d[p])
                    / self.blocking_rate(p, dir * d[p], ban_artificials)
            });
            let uq = self.up[entering];
            if uq.is_finite() && theta_row.is_none_or(|t| uq <= t + EPS) {
                // The entering column's own bound blocks first: a bound
                // flip — the point moves, the basis doesn't.
                let m = self.basis.len();
                for i in 0..m {
                    self.xb[i] -= uq * dir * d[i];
                }
                self.at_upper[entering] = !self.at_upper[entering];
                self.stats.bound_flips += 1;
                if uq > FEAS_EPS {
                    degen_streak = 0;
                }
                continue;
            }
            let Some(p) = leaving else {
                // Apparent unboundedness: refactorize and re-confirm before
                // reporting, so drift (or a live shift) cannot cause a false
                // positive.
                self.refactorize();
                self.dual_prices_into(col_costs, &mut y);
                let rc = self.reduced_cost(entering, col_costs, &y);
                let adj = if self.at_upper[entering] { -rc } else { rc };
                if adj > -UNBOUNDED_EPS {
                    continue;
                }
                self.direction_into(entering, &mut d);
                if d.iter()
                    .enumerate()
                    .any(|(i, &di)| self.blocking_rate(i, dir * di, ban_artificials) > PIVOT_EPS)
                {
                    continue;
                }
                return Err(LpStatus::Unbounded);
            };
            let theta = theta_row.expect("leaving row implies a ratio");
            if theta.abs() <= FEAS_EPS {
                degen_streak += 1;
            } else {
                degen_streak = 0;
            }
            let rc_entering = self.reduced_cost(entering, col_costs, &y);
            // Pre-pivot pivot row ρ = (B⁻¹)ₚ: feeds the devex weight update
            // (α_j = ρ·A_j) and the incremental dual-price update.
            self.inverse_row_into(p, &mut rho);
            {
                // The weight propagation's α_j = ρ·A_j scan is pricing
                // work — timed into the same bucket as `select`.  A
                // hyper-sparse ρ turns the scan inside out: α_j can only be
                // nonzero on columns adjacent to ρ's support rows, so
                // scatter along the row-major mirror instead of dotting
                // every column against the dense ρ.  Ascending-row
                // accumulation keeps each α bit-identical to the full dot
                // (the skipped terms are exact zeros), so the pivot
                // sequence cannot depend on which kernel path produced ρ.
                let t_price = Instant::now();
                let mut scratch = std::mem::take(&mut self.alpha_scratch);
                let mut touched = std::mem::take(&mut self.alpha_touched);
                let mut support = std::mem::take(&mut self.alpha_rows);
                for &j in &touched {
                    scratch[j] = 0.0;
                }
                touched.clear();
                let mut scattered = false;
                if self.ws.sparse {
                    if let Some(rows) = self.cols.rows_adjacency() {
                        if scratch.len() < self.cols.num_cols() {
                            scratch.resize(self.cols.num_cols(), 0.0);
                        }
                        support.clear();
                        support.extend_from_slice(&self.ws.pattern);
                        support.sort_unstable();
                        support.dedup();
                        for &r in &support {
                            let rr = rho[r];
                            if rr == 0.0 {
                                continue;
                            }
                            let Some(adj) = rows.get(r) else { continue };
                            for &(j, a) in adj {
                                scratch[j as usize] += a * rr;
                                touched.push(j as usize);
                            }
                        }
                        scattered = true;
                    }
                }
                let cols = &self.cols;
                let is_basic = &self.is_basic;
                let kind = &self.kind;
                let candidate =
                    |j: usize| !(is_basic[j] || ban_artificials && kind[j] == ColKind::Artificial);
                let scratch_ref = &scratch;
                let alpha = |j: usize| {
                    if scattered {
                        scratch_ref[j]
                    } else {
                        cols.dot(j, &rho)
                    }
                };
                pricer.observe_pivot(&PivotView {
                    entering,
                    leaving: self.basis[p],
                    alpha_q: d[p],
                    n_cols: cols.num_cols(),
                    candidate: &candidate,
                    alpha: &alpha,
                    touched: scattered.then_some(&touched[..]),
                });
                self.stats.pricing_ns += t_price.elapsed().as_nanos() as u64;
                self.alpha_scratch = scratch;
                self.alpha_touched = touched;
                self.alpha_rows = support;
            }
            let dp = d[p];
            // The leaving basic exits at whichever bound blocked: its upper
            // when it was *rising* (finite bounds only — the [0,0]
            // artificial guard and plain lower blocks both exit at 0).
            let leave_at_upper = dir * dp < 0.0 && self.up[self.basis[p]].is_finite();
            let enter_from = if dir < 0.0 { uq } else { 0.0 };
            self.pivot_bounded(p, entering, &d, enter_from, dir * theta, leave_at_upper);
            // Classic dual-price update: Δy = (r_q / d_p) · ρ — it zeroes
            // the entering column's reduced cost.
            if rc_entering.abs() > EPS {
                let scale = rc_entering / dp;
                for (yr, rr) in y.iter_mut().zip(&rho) {
                    *yr += scale * rr;
                }
            }
        }
        // The built-in runaway backstop tripped: the solver ran out of
        // resources without a verdict — same contract as an explicit budget.
        Err(LpStatus::BudgetExhausted)
    }

    /// The rate at which row `i`'s basic value approaches its blocking bound
    /// as the entering variable moves (`ei` is the *signed* basic response
    /// `dir·d_i`), or 0 when the row does not block.
    ///
    /// Ordinary rows block when `ei > 0` (the basic value falls toward 0),
    /// and when `ei < 0` with a finite upper bound (the value rises toward
    /// it).  A row whose basic variable is a *zero-valued artificial* also
    /// blocks when `ei < 0`: the artificial would re-grow above zero,
    /// silently abandoning the (equality) row it stands for — it must leave
    /// the basis in a degenerate pivot instead.
    /// `guard_artificials` is set in phase 2 only: there a leaving artificial
    /// can never re-enter (artificials are banned from pricing), so each
    /// guard pivot permanently retires one.  In phase 1 artificials are
    /// ordinary objective variables and the guard would two-cycle them.
    fn blocking_rate(&self, i: usize, ei: f64, guard_artificials: bool) -> f64 {
        if ei > PIVOT_EPS {
            ei
        } else if ei < -PIVOT_EPS {
            let col = self.basis[i];
            if self.up[col].is_finite()
                || guard_artificials
                    && self.kind[col] == ColKind::Artificial
                    && self.xb[i] <= FEAS_EPS
            {
                -ei
            } else {
                0.0
            }
        } else {
            0.0
        }
    }

    /// Distance of row `i`'s basic value to the bound it blocks at
    /// (companion of [`blocking_rate`](Self::blocking_rate)).
    fn blocking_value(&self, i: usize, ei: f64) -> f64 {
        if ei > PIVOT_EPS {
            self.xb[i]
        } else {
            let col = self.basis[i];
            if self.up[col].is_finite() {
                self.up[col] - self.xb[i]
            } else {
                // The [0, 0] artificial guard: distance to its upper bound 0.
                -self.xb[i]
            }
        }
    }

    /// The classic exact ratio test with smallest-basis-index tie-breaking —
    /// the form Bland's anti-cycling guarantee requires, used only in the
    /// last-resort Bland regime.  `dir` is the entering column's direction
    /// of motion (−1 when it decreases from its upper bound).
    fn ratio_test(&self, d: &[f64], dir: f64, guard_artificials: bool) -> Option<usize> {
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, &di) in d.iter().enumerate() {
            let ei = dir * di;
            let rate = self.blocking_rate(i, ei, guard_artificials);
            if rate > PIVOT_EPS {
                let ratio = self.blocking_value(i, ei) / rate;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.is_some_and(|l| self.basis[i] < self.basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        leaving
    }

    /// Two-pass Harris ratio test: pass 1 relaxes the feasibility tolerance
    /// to find the loosest admissible step, pass 2 picks the numerically
    /// largest pivot among rows whose exact ratio stays within it —
    /// degenerate corners get stable pivots instead of tiny cycling ones.
    fn harris_ratio_test(&self, d: &[f64], dir: f64, guard_artificials: bool) -> Option<usize> {
        let mut theta_relaxed = f64::INFINITY;
        for (i, &di) in d.iter().enumerate() {
            let ei = dir * di;
            let rate = self.blocking_rate(i, ei, guard_artificials);
            if rate > PIVOT_EPS {
                let relaxed = (self.blocking_value(i, ei) + crate::pricing::HARRIS_RELAX) / rate;
                if relaxed < theta_relaxed {
                    theta_relaxed = relaxed;
                }
            }
        }
        if !theta_relaxed.is_finite() {
            return None;
        }
        let mut leaving: Option<usize> = None;
        let mut best_pivot = 0.0;
        for (i, &di) in d.iter().enumerate() {
            let ei = dir * di;
            let rate = self.blocking_rate(i, ei, guard_artificials);
            if rate > PIVOT_EPS && self.blocking_value(i, ei) / rate <= theta_relaxed {
                let better = rate > best_pivot
                    || (rate == best_pivot
                        && leaving.is_some_and(|l| self.basis[i] < self.basis[l]));
                if better {
                    best_pivot = rate;
                    leaving = Some(i);
                }
            }
        }
        leaving
    }

    /// Phase 1 over the artificial columns; returns `false` when the system
    /// is infeasible.
    fn run_phase1(&mut self, max_iters: usize) -> Result<bool, LpStatus> {
        let mut costs = vec![0.0; self.cols.num_cols()];
        let mut any = false;
        for (j, &k) in self.kind.iter().enumerate() {
            if k == ColKind::Artificial {
                costs[j] = 1.0;
                any = true;
            }
        }
        if !any {
            return Ok(true);
        }
        self.iterate(&costs, false, max_iters)?;
        if self.xb_shifted {
            // Wash the anti-degeneracy shift out before judging feasibility.
            self.refactorize();
        }
        let artificial_sum: f64 = self
            .basis
            .iter()
            .zip(&self.xb)
            .filter(|&(&col, _)| self.kind[col] == ColKind::Artificial)
            .map(|(_, &v)| v)
            .sum();
        if artificial_sum > FEAS_EPS {
            return Ok(false);
        }
        self.drive_out_artificials();
        Ok(true)
    }

    /// Pivots zero-valued basic artificials out of the basis when a
    /// non-artificial column with a usable pivot element exists.
    fn drive_out_artificials(&mut self) {
        let m = self.basis.len();
        let mut rho: Vec<f64> = Vec::new();
        let mut d: Vec<f64> = Vec::new();
        for p in 0..m {
            if self.kind[self.basis[p]] != ColKind::Artificial {
                continue;
            }
            self.inverse_row_into(p, &mut rho);
            let candidate = (0..self.cols.num_cols()).find(|&j| {
                if self.is_basic[j] || self.kind[j] == ColKind::Artificial {
                    return false;
                }
                self.cols.dot(j, &rho).abs() > PIVOT_EPS
            });
            if let Some(j) = candidate {
                self.direction_into(j, &mut d);
                // The artificial leaves exactly at 0, so the point barely
                // moves; an at-upper entering column simply becomes basic at
                // (about) its bound.
                let enter_from = if self.at_upper[j] { self.up[j] } else { 0.0 };
                let delta = self.xb[p] / d[p];
                self.pivot_bounded(p, j, &d, enter_from, delta, false);
                if self.factor_stale {
                    self.refactorize();
                }
            }
        }
    }

    /// Dual-simplex feasibility restoration (see the [module docs](self)):
    /// prices with `last_costs` — the objective the warm basis is optimal,
    /// hence dual feasible, for — and pivots the infeasible basic variables
    /// out until every basic value is admissible again.
    ///
    /// Basic artificials are treated as bounded in `[0, 0]`: a nonzero value
    /// in either direction makes them leaving candidates, so an equality row
    /// appended warm is enforced the moment its artificial reaches zero.
    ///
    /// The leaving row is priced by `viol²/γ` with steepest-edge (or devex)
    /// reference weights `γ` — on the totally degenerate systems the
    /// analysis produces, naive row choice repairs the same rows hundreds of
    /// times over.  The ratio test is, by default, the **bound-flipping**
    /// (long-step) variant: finite-width nonbasic columns whose reduced cost
    /// would change sign before the chosen breakpoint are flipped to their
    /// other bound in one batch instead of each costing a full pivot.
    fn dual_restore(&mut self, max_iters: usize) -> DualOutcome {
        let Some(costs) = self.last_costs.clone() else {
            return DualOutcome::GaveUp;
        };
        let mut costs = costs;
        costs.resize(self.cols.num_cols(), 0.0);
        let n_cols = self.cols.num_cols();
        let bland_after = bland_fallback_threshold(self.basis.len(), n_cols) / 4;
        let mut y: Vec<f64> = Vec::new();
        self.dual_prices_into(&costs, &mut y);

        // The warm basis must actually be dual feasible for the old costs —
        // at-lower columns need rc ≥ 0, at-upper columns rc ≤ 0; drift
        // beyond tolerance sends the solve down the cold path.
        for j in 0..n_cols {
            if self.is_basic[j] || self.kind[j] == ColKind::Artificial {
                continue;
            }
            let rc = self.reduced_cost(j, &costs, &y);
            let drifted = if self.at_upper[j] {
                rc > DUAL_FEAS_EPS
            } else {
                rc < -DUAL_FEAS_EPS
            };
            if drifted {
                return DualOutcome::GaveUp;
            }
        }

        let m = self.basis.len();
        let steepest = self.dual_pricing == DualPricing::Steepest;
        // Reference weights: γ_i tracks the squared norm of row i of B⁻¹.
        // Steepest edge pays m btrans up front for the *exact* norms — the
        // Forrest–Goldfarb recurrence is only as good as its starting point
        // (seeding it with 1s makes the weights drift arbitrarily far from
        // the truth within a few degenerate pivots).  Devex starts from the
        // classic all-ones reference frame and stays approximate.
        let mut gamma = vec![1.0f64; m];
        if steepest {
            let t = Instant::now();
            let threads = rayon::current_num_threads().clamp(1, 8);
            if m >= PAR_SEED_MIN_ROWS && threads > 1 {
                // The m seeding btrans are independent row solves: fan them
                // out over the persistent worker pool, one private
                // workspace per chunk (hyper/fallback counts are carried
                // back per chunk; workspace sizing does not count as a
                // hot-loop allocation).
                let chunk = m.div_ceil(threads);
                let factor: &dyn Factorization = &*self.factor;
                let mut chunk_counters = vec![(0u64, 0u64); m.div_ceil(chunk)];
                rayon::scope(|s| {
                    for ((ci, g), ctr) in gamma
                        .chunks_mut(chunk)
                        .enumerate()
                        .zip(chunk_counters.iter_mut())
                    {
                        s.spawn(move || {
                            let mut ws = KernelWs::default();
                            for (k, gi) in g.iter_mut().enumerate() {
                                factor.inverse_row_ws(ci * chunk + k, &mut ws);
                                *gi = ws.sol_norm_sq().max(1e-10);
                            }
                            *ctr = (ws.hyper_btrans, ws.dense_fallbacks);
                        });
                    }
                });
                for (hb, df) in chunk_counters {
                    self.stats.hyper_sparse_btrans += hb;
                    self.stats.dense_fallbacks += df;
                }
            } else {
                for (i, g) in gamma.iter_mut().enumerate() {
                    self.factor.inverse_row_ws(i, &mut self.ws);
                    *g = self.ws.sol_norm_sq().max(1e-10);
                }
            }
            self.stats.btran_ns += t.elapsed().as_nanos() as u64;
        }

        // Hot-loop scratch: allocated (at most) once per restoration,
        // written in place by the workspace kernels each pivot.
        let mut rho: Vec<f64> = Vec::new();
        let mut d: Vec<f64> = Vec::new();
        let mut tau: Vec<f64> = Vec::new();
        let mut bps: Vec<(f64, usize, f64)> = Vec::new(); // (ratio, j, |α|)
        let mut flips: Vec<usize> = Vec::new();

        for iter in 0..max_iters {
            if self.budget_exhausted(iter) {
                return DualOutcome::Exhausted;
            }
            // Leaving row: maximize viol²/γ over the violated basics.
            // Ordinary basics violate below 0 or above a finite upper
            // bound; basic artificials violate at any nonzero value.
            let t_price = Instant::now();
            let mut leave: Option<(usize, f64)> = None; // (row, viol)
            let mut best_score = 0.0f64;
            for i in 0..m {
                let col = self.basis[i];
                let x = self.xb[i];
                let up_eff = if self.kind[col] == ColKind::Artificial {
                    0.0
                } else {
                    self.up[col]
                };
                let mut viol = -x;
                if up_eff.is_finite() && x - up_eff > viol {
                    viol = x - up_eff;
                }
                if viol > FEAS_EPS {
                    let score = viol * viol / gamma[i];
                    if score > best_score {
                        best_score = score;
                        leave = Some((i, viol));
                    }
                }
            }
            self.stats.pricing_ns += t_price.elapsed().as_nanos() as u64;
            let Some((p, viol_p)) = leave else {
                return DualOutcome::Restored;
            };
            // Direction the leaving basic must move: up from below its
            // lower bound, down from above its upper (artificials: 0).
            let from_below = self.xb[p] < 0.0;
            self.inverse_row_into(p, &mut rho);
            let bland = iter >= bland_after;
            // Eligibility: entering at-lower needs `sig·α > 0`, at-upper
            // the opposite sign (its motion is downward).
            let sig = if from_below { -1.0 } else { 1.0 };

            let t_ratio = Instant::now();
            bps.clear();
            flips.clear();
            let mut bland_pick: Option<usize> = None;
            for j in 0..n_cols {
                if self.is_basic[j] || self.kind[j] == ColKind::Artificial || self.up[j] <= EPS {
                    continue;
                }
                let alpha = self.cols.dot(j, &rho);
                let eligible = if self.at_upper[j] {
                    sig * alpha < -PIVOT_EPS
                } else {
                    sig * alpha > PIVOT_EPS
                };
                if !eligible {
                    continue;
                }
                if bland {
                    // Bland regime: first eligible column, cycling-proof.
                    bland_pick = Some(j);
                    break;
                }
                let rc = self.reduced_cost(j, &costs, &y);
                let rc_eff = if self.at_upper[j] { -rc } else { rc }.max(0.0);
                bps.push((rc_eff / alpha.abs(), j, alpha.abs()));
            }
            let selected: Option<usize> = if bland {
                bland_pick
            } else if bps.is_empty() {
                None
            } else if self.dual_ratio == DualRatio::BoundFlip {
                // Long step: pass breakpoints while the dual objective's
                // slope (the remaining primal violation) stays positive;
                // every passed finite-width column flips instead of
                // entering.  The slope bookkeeping guarantees the final
                // entering step never overshoots the flipped columns.
                // Ratio ascending; among (near-)equal ratios prefer the
                // larger |α| (the Harris stability rule), then column order
                // for determinism.
                bps.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                        .then(a.1.cmp(&b.1))
                });
                let mut slope = viol_p;
                let mut chosen: Option<usize> = None;
                for &(_, j, aabs) in &bps {
                    let width = self.up[j];
                    if !width.is_finite() || slope - width * aabs <= EPS {
                        chosen = Some(j);
                        break;
                    }
                    slope -= width * aabs;
                    flips.push(j);
                }
                // Every breakpoint passed with slope still positive: the
                // dual is unbounded, the primal infeasible (nothing was
                // committed — discard the staged flips).
                if chosen.is_none() {
                    flips.clear();
                }
                chosen
            } else {
                // Legacy single-breakpoint test: min ratio, |α| tie-break
                // for stability.
                let mut best: Option<(usize, f64, f64)> = None; // (j, ratio, |α|)
                for &(ratio, j, aabs) in &bps {
                    let better = match best {
                        None => true,
                        Some((_, br, ba)) => ratio < br - EPS || (ratio < br + EPS && aabs > ba),
                    };
                    if better {
                        best = Some((j, ratio, aabs));
                    }
                }
                best.map(|(j, _, _)| j)
            };
            self.stats.ratio_ns += t_ratio.elapsed().as_nanos() as u64;
            let Some(q) = selected else {
                // No column can repair this row: primal infeasible.  The
                // caller re-confirms with a cold solve before reporting.
                return DualOutcome::Infeasible;
            };

            if !flips.is_empty() {
                // Batch the flips' effect on the basic values through one
                // sparse ftran: x_B += B⁻¹·Σ s_j·up_j·A_j with s = +1 for
                // upper→lower flips and −1 for lower→upper.  The update
                // walks the kernel's result pattern when it stayed sparse.
                let mut entries = std::mem::take(&mut self.rhs_buf);
                entries.clear();
                for &j in &flips {
                    let s = if self.at_upper[j] {
                        self.up[j]
                    } else {
                        -self.up[j]
                    };
                    self.cols.for_each(j, &mut |r, a| entries.push((r, s * a)));
                }
                self.ws.load_sparse(&entries, m);
                self.rhs_buf = entries;
                let t = Instant::now();
                self.factor.ftran_ws(&mut self.ws);
                self.stats.ftran_ns += t.elapsed().as_nanos() as u64;
                if self.ws.sparse {
                    for &r in &self.ws.pattern {
                        self.xb[r] += self.ws.sol[r];
                    }
                } else {
                    for (x, dx) in self.xb.iter_mut().zip(&self.ws.sol) {
                        *x += dx;
                    }
                }
                for &j in &flips {
                    self.at_upper[j] = !self.at_upper[j];
                }
                self.stats.bound_flips += flips.len();
            }

            let rc_q = self.reduced_cost(q, &costs, &y);
            self.direction_into(q, &mut d);
            if d[p].abs() < PIVOT_EPS {
                return DualOutcome::GaveUp;
            }
            let dp = d[p];
            // Step the entering value by exactly what lands the leaving
            // basic on its violated bound.
            let leaving_col = self.basis[p];
            let target = if from_below || self.kind[leaving_col] == ColKind::Artificial {
                0.0
            } else {
                self.up[leaving_col]
            };
            let delta = (self.xb[p] - target) / dp;
            let enter_from = if self.at_upper[q] { self.up[q] } else { 0.0 };
            let leave_at_upper = !from_below
                && self.kind[leaving_col] != ColKind::Artificial
                && self.up[leaving_col].is_finite();
            // Steepest-edge needs τ = B⁻¹ρ_p against the *pre-pivot* basis.
            if steepest {
                self.ws.load_dense(&rho);
                let t = Instant::now();
                self.factor.ftran_ws(&mut self.ws);
                self.stats.ftran_ns += t.elapsed().as_nanos() as u64;
                self.ws.copy_sol_into(&mut tau);
            }
            self.pivot_bounded(p, q, &d, enter_from, delta, leave_at_upper);
            self.stats.iterations += 1;
            self.stats.dual_pivots += 1;
            self.budget_iters += 1;

            // Reference-weight recurrences for the next leaving choice.
            let gamma_p = gamma[p];
            if steepest {
                // Exact steepest edge (Forrest–Goldfarb): γ_p' = γ_p/α_p²,
                // γ_i' = γ_i − 2(α_i/α_p)τ_i + (α_i/α_p)²γ_p.
                for i in 0..m {
                    if i == p {
                        continue;
                    }
                    let r = d[i] / dp;
                    gamma[i] = (gamma[i] - 2.0 * r * tau[i] + r * r * gamma_p).max(1e-10);
                }
                gamma[p] = (gamma_p / (dp * dp)).max(1e-10);
            } else {
                // Devex: the cheap monotone approximation of the same
                // weights — no extra ftran.
                for i in 0..m {
                    if i == p || d[i] == 0.0 {
                        continue;
                    }
                    let r = d[i] / dp;
                    gamma[i] = gamma[i].max(r * r * gamma_p);
                }
                gamma[p] = (gamma_p / (dp * dp)).max(1.0);
            }

            if self.factor_stale || self.stale_pivots >= 100 {
                // Refresh point: rebuild the factorization and the dual
                // prices from scratch, washing out incremental drift.
                if !self.refactorize() {
                    return DualOutcome::GaveUp;
                }
                if self.deadline_hit() {
                    return DualOutcome::Exhausted;
                }
                self.dual_prices_into(&costs, &mut y);
            } else if rc_q.abs() > EPS {
                // Same O(m) incremental dual-price update as the primal
                // loop: Δy = (r_q / α_pq)·ρ zeroes the entering column's
                // reduced cost — no per-pivot btran needed.
                let scale = rc_q / dp;
                for (yr, rr) in y.iter_mut().zip(&rho) {
                    *yr += scale * rr;
                }
            }
        }
        DualOutcome::GaveUp
    }

    /// Standard-form column costs for a problem-variable objective.
    pub(crate) fn split_costs(&self, objective: &[(LpVarId, f64)]) -> Vec<f64> {
        let mut costs = vec![0.0; self.cols.num_cols()];
        for &(v, coeff) in objective {
            let (pos, neg) = self.var_cols[v.index()];
            costs[pos] += coeff;
            if let Some(neg) = neg {
                costs[neg] -= coeff;
            }
        }
        costs
    }

    /// The per-solve stats with the derived fields filled in (the
    /// eta-compaction delta against this minimize's baseline).
    fn snapshot_stats(&self) -> SolveStats {
        let mut s = self.stats;
        s.eta_compactions = self
            .factor
            .compactions()
            .saturating_sub(self.compaction_base);
        // Kernel counters accumulate on the session workspace for its whole
        // lifetime; the per-solve numbers are deltas against the baseline
        // captured when this minimize started.  (Parallel seeding adds its
        // private-workspace counts straight into `stats`.)
        let (hf, hb, df, ka) = self.ws.counters();
        s.hyper_sparse_ftrans += hf.saturating_sub(self.ws_base.0);
        s.hyper_sparse_btrans += hb.saturating_sub(self.ws_base.1);
        s.dense_fallbacks += df.saturating_sub(self.ws_base.2);
        s.kernel_allocs += ka.saturating_sub(self.ws_base.3);
        s
    }

    fn extract(&self, objective: &[(LpVarId, f64)], status: LpStatus) -> LpSolution {
        let mut col_values = vec![0.0; self.cols.num_cols()];
        for (j, &at_up) in self.at_upper.iter().enumerate() {
            if at_up {
                col_values[j] = self.up[j];
            }
        }
        for (k, &col) in self.basis.iter().enumerate() {
            col_values[col] = self.xb[k];
        }
        let values: Vec<f64> = self
            .var_cols
            .iter()
            .map(|&(pos, neg)| col_values[pos] - neg.map(|n| col_values[n]).unwrap_or(0.0))
            .collect();
        let objective_value = objective.iter().map(|&(v, c)| c * values[v.index()]).sum();
        LpSolution::new(status, objective_value, values).with_stats(self.snapshot_stats())
    }

    fn infeasible(&self) -> LpSolution {
        LpSolution::new(LpStatus::Infeasible, 0.0, vec![0.0; self.var_cols.len()])
            .with_stats(self.snapshot_stats())
    }

    /// The budget ran out without a verdict: values are meaningless, stats
    /// record what was spent.
    fn exhausted(&self) -> LpSolution {
        LpSolution::new(
            LpStatus::BudgetExhausted,
            0.0,
            vec![0.0; self.var_cols.len()],
        )
        .with_stats(self.snapshot_stats())
    }

    /// Benchmark window (see [`crate::bench_support`]): basis dimension.
    pub(crate) fn kernel_rows(&self) -> usize {
        self.basis.len()
    }

    /// Benchmark window: number of standard-form columns.
    pub(crate) fn kernel_num_cols(&self) -> usize {
        self.cols.num_cols()
    }

    /// Benchmark window: whether standard-form column `j` is basic.
    pub(crate) fn kernel_is_basic(&self, j: usize) -> bool {
        self.is_basic[j]
    }

    /// Benchmark window: pins the session workspace to the dense scan
    /// (the hyper-vs-dense baseline switch).
    pub(crate) fn kernel_force_dense(&mut self, on: bool) {
        self.ws.force_dense = on;
    }

    /// Benchmark window: the session workspace's lifetime kernel counters.
    pub(crate) fn kernel_counters(&self) -> (u64, u64, u64, u64) {
        self.ws.counters()
    }

    /// Benchmark window: current eta-file length of the factorization.
    pub(crate) fn kernel_eta_count(&self) -> usize {
        self.factor.eta_count()
    }

    /// Benchmark window: applies one factorization update (entering column
    /// `j` at the most stable row of its ftran direction), growing the eta
    /// file without a re-solve — a completed `minimize` always ends on a
    /// freshly refactorized basis, so this is the only way a fixture can
    /// hold an eta-laden factorization still.  The basis bookkeeping is
    /// deliberately left alone: the fixture needs a longer eta file to
    /// time, not a meaningful basis, and the core is not used for solving
    /// afterwards.  Returns `false` when the update was declined.
    pub(crate) fn kernel_grow_eta(&mut self, j: usize) -> bool {
        let mut d = Vec::new();
        self.direction_into(j, &mut d);
        let p = match d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        {
            Some((p, &dp)) if dp.abs() > PIVOT_EPS => p,
            _ => return false,
        };
        self.factor.update(p, &d).is_ok()
    }

    /// Whether any basic value is primal infeasible (negative, above a
    /// finite upper bound, or nonzero for a basic artificial) — the
    /// condition the dual-simplex restoration repairs after warm row
    /// extension.
    fn has_infeasible_basics(&self) -> bool {
        self.basis.iter().zip(&self.xb).any(|(&col, &x)| {
            if self.kind[col] == ColKind::Artificial {
                x.abs() > FEAS_EPS
            } else {
                x < -FEAS_EPS || x - self.up[col] > FEAS_EPS
            }
        })
    }
}

impl LpSession for SimplexCore {
    fn add_var(&mut self, _name: &str, free: bool) -> LpVarId {
        // A fresh column enters nonbasic at zero: the warm basis survives.
        self.push_var(free)
    }

    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        self.append_row(terms, cmp, rhs);
    }

    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution {
        let m = self.b.len();
        // The built-in runaway backstop, tightened to whatever iteration
        // budget the session has left (the budget spans every minimize of
        // the session's lifetime, so warm re-solves draw down the same pool).
        let max_iters = (20_000 + 50 * (self.cols.num_cols() + m))
            .min(self.budget.iters_remaining(self.budget_iters));
        self.stats = SolveStats::default();
        self.compaction_base = self.factor.compactions();
        self.ws_base = self.ws.counters();
        if self.budget_exhausted(0) {
            // The session's budget was already spent by earlier minimizes:
            // refuse to burn more, and report it as what it is.
            self.warm = false;
            return self.exhausted();
        }
        if self.warm && self.factor_stale {
            // Deferred row extensions (LU, or a declined border pivot):
            // one rebuild absorbs any number of appended rows.
            if !self.refactorize() {
                self.warm = false;
            }
        }
        if self.warm && self.warm_strategy == WarmStrategy::Dual && self.has_infeasible_basics() {
            match self.dual_restore(max_iters) {
                DualOutcome::Restored => {}
                // Both the giving-up and the infeasibility verdicts restart
                // cold: phase 1 is the arbiter of infeasibility, so a dual
                // dead end can never mis-report a feasible system.
                DualOutcome::Infeasible | DualOutcome::GaveUp => self.warm = false,
                // Out of budget: do *not* restart cold — that would spend
                // time the caller no longer has.
                DualOutcome::Exhausted => {
                    self.warm = false;
                    return self.exhausted();
                }
            }
        }
        if !self.warm {
            self.rebuild();
        }
        if self.needs_phase1 {
            match self.run_phase1(max_iters) {
                Ok(true) => self.needs_phase1 = false,
                Ok(false) => {
                    self.warm = false;
                    return self.infeasible();
                }
                // Resource exhaustion is not an infeasibility proof, and
                // phase 1 (objective ≥ 0) cannot be genuinely unbounded —
                // either way the solver gave up without a verdict.
                Err(_) => {
                    self.warm = false;
                    return self.exhausted();
                }
            }
        }
        let costs = self.split_costs(objective);
        let status = match self.iterate(&costs, true, max_iters) {
            Ok(()) => LpStatus::Optimal,
            Err(s) => s,
        };
        if self.xb_shifted {
            // Wash the anti-degeneracy shift out before extracting values.
            self.refactorize();
        }
        self.warm = status == LpStatus::Optimal;
        self.last_costs = self.warm.then_some(costs);
        self.extract(objective, status)
    }

    fn num_vars(&self) -> usize {
        self.var_cols.len()
    }

    fn num_constraints(&self) -> usize {
        // Singleton `x <= u` rows absorbed into column bounds still count:
        // callers see the logical problem, not the tableau layout.
        self.b.len() + self.absorbed_rows
    }

    fn warm_resolves_in_place(&self) -> bool {
        self.warm_strategy == WarmStrategy::Dual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LpBackend, SparseBackend};
    use crate::factor::FactorKind;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Every (factor × warm) configuration of the core, for matrix checks.
    fn configurations() -> Vec<SolverTuning> {
        let mut tunings = Vec::new();
        for factor in FactorKind::ALL {
            for warm in [WarmStrategy::Dual, WarmStrategy::Phase1] {
                tunings.push(SolverTuning {
                    factor,
                    warm,
                    ..SolverTuning::default()
                });
            }
        }
        tunings
    }

    #[test]
    fn matches_dense_on_the_doc_example() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
        let sol = SparseBackend.solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, -7.0);
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_rows_and_free_variables() {
        // x + y = 1, x - y = 5, both free: x = 3, y = -2.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", true);
        let y = lp.add_var("y", true);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 5.0);
        lp.set_objective(vec![(x, 1.0)]);
        for tuning in configurations() {
            let sol = SparseBackend.solve_with(&lp, &tuning);
            assert!(sol.is_optimal(), "{tuning:?}");
            assert_close(sol.value(x), 3.0);
            assert_close(sol.value(y), -2.0);
        }
    }

    #[test]
    fn reminimize_skips_phase_one_and_stays_exact() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let mut session = SparseBackend.open(&lp);
        let a = session.minimize(&[(x, 1.0), (y, 1.0)]);
        assert!(a.is_optimal());
        let b = session.minimize(&[(x, 5.0), (y, 1.0)]);
        assert!(b.is_optimal());
        // minimize 5x + y over the region: best at x = 0, y = 6 → 6.
        assert_close(b.objective, 6.0);
        let a_again = session.minimize(&[(x, 1.0), (y, 1.0)]);
        assert_eq!(a.status, a_again.status);
        assert_close(a.objective, a_again.objective);
    }

    #[test]
    fn incremental_rows_tighten_the_optimum_under_every_configuration() {
        for tuning in configurations() {
            let mut lp = LpProblem::new();
            let x = lp.add_var("x", false);
            let y = lp.add_var("y", false);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
            let mut session = SparseBackend.open_with(&lp, &tuning);
            let first = session.minimize(&[(x, -1.0), (y, -2.0)]);
            assert_close(first.objective, -8.0); // y = 4
                                                 // A cutting row the current point violates: y <= 1.
            session.add_constraint(&[(y, 1.0)], Cmp::Le, 1.0);
            let second = session.minimize(&[(x, -1.0), (y, -2.0)]);
            assert!(second.is_optimal(), "{tuning:?}");
            assert_close(second.objective, -5.0); // x = 3, y = 1
            if tuning.warm == WarmStrategy::Dual {
                assert!(
                    second.stats.dual_pivots > 0,
                    "dual strategy solved the cut without dual pivots: {tuning:?}"
                );
            } else {
                assert_eq!(second.stats.dual_pivots, 0);
            }
            // And an equality row forcing x = 2.
            session.add_constraint(&[(x, 1.0)], Cmp::Eq, 2.0);
            let third = session.minimize(&[(x, -1.0), (y, -2.0)]);
            assert!(third.is_optimal(), "{tuning:?}");
            assert_close(third.objective, -4.0);
            assert_eq!(session.num_constraints(), 3);
        }
    }

    #[test]
    fn incremental_vars_enter_at_zero() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let mut session = SparseBackend.open(&lp);
        assert_close(session.minimize(&[(x, -1.0)]).objective, -5.0);
        let z = session.add_var("z", false);
        session.add_constraint(&[(x, 1.0), (z, 1.0)], Cmp::Le, 6.0);
        let sol = session.minimize(&[(x, -1.0), (z, -1.0)]);
        assert!(sol.is_optimal());
        assert_close(sol.objective, -6.0);
        assert_eq!(session.num_vars(), 2);
    }

    #[test]
    fn infeasible_and_unbounded_statuses_match_dense() {
        let mut infeasible = LpProblem::new();
        let x = infeasible.add_var("x", false);
        infeasible.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        infeasible.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        infeasible.set_objective(vec![(x, 1.0)]);
        assert_eq!(
            SparseBackend.solve(&infeasible).status,
            LpStatus::Infeasible
        );

        let mut unbounded = LpProblem::new();
        let x = unbounded.add_var("x", false);
        unbounded.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        unbounded.set_objective(vec![(x, -1.0)]);
        assert_eq!(SparseBackend.solve(&unbounded).status, LpStatus::Unbounded);
    }

    #[test]
    fn infeasible_session_recovers_after_rebuild() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let mut session = SparseBackend.open(&lp);
        assert_eq!(session.minimize(&[(x, 1.0)]).status, LpStatus::Infeasible);
        // Deterministic on retry.
        assert_eq!(session.minimize(&[(x, 1.0)]).status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut lp = LpProblem::new();
        let x1 = lp.add_var("x1", false);
        let x2 = lp.add_var("x2", false);
        let x3 = lp.add_var("x3", false);
        let x4 = lp.add_var("x4", false);
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(vec![(x1, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(x1, -10.0), (x2, 57.0), (x3, 9.0), (x4, 24.0)]);
        for tuning in configurations() {
            let sol = SparseBackend.solve_with(&lp, &tuning);
            assert!(sol.is_optimal(), "{tuning:?}");
            assert_close(sol.objective, -1.0);
        }
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1  => y = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Cmp::Le, -4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(y, 1.0)]);
        let sol = SparseBackend.solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn lu_factor_reports_etas_and_matches_dense_factor() {
        let mut lp = LpProblem::new();
        let vars: Vec<_> = (0..6).map(|i| lp.add_var(format!("v{i}"), false)).collect();
        for (i, pair) in vars.windows(2).enumerate() {
            lp.add_constraint(
                vec![(pair[0], 1.0), (pair[1], 2.0)],
                if i % 2 == 0 { Cmp::Ge } else { Cmp::Le },
                1.0 + i as f64,
            );
        }
        lp.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
        let dense = SparseBackend.solve_with(
            &lp,
            &SolverTuning {
                factor: FactorKind::Dense,
                ..SolverTuning::default()
            },
        );
        let lu = SparseBackend.solve_with(
            &lp,
            &SolverTuning {
                factor: FactorKind::Lu,
                ..SolverTuning::default()
            },
        );
        assert_eq!(dense.status, lu.status);
        assert_close(dense.objective, lu.objective);
        assert_eq!(dense.stats.etas, 0);
        assert!(lu.stats.etas > 0, "LU solve recorded no eta updates");
    }
}
