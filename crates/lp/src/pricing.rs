//! Pluggable pricing rules for the simplex solvers.
//!
//! Pricing — choosing the *entering column* each iteration — is where the
//! simplex method wins or loses on degenerate instances.  The long-chain
//! global-mode LPs of the central-moment analysis stall both backends under
//! pure Dantzig pricing (the most negative reduced cost repeatedly selects
//! columns whose pivots make no progress), so the pivoting core is factored
//! behind the `Pricer` abstraction with three implementations:
//!
//! * `DantzigPricer` — the classic "most negative reduced cost" rule, the
//!   pre-existing behavior of both solvers and still the cheapest per
//!   iteration;
//! * `DevexPricer` — approximate steepest edge (Forrest–Goldfarb devex):
//!   columns are scored by `rc²/w` against reference-framework weights that
//!   are updated from the pivot row and reset when they overflow.  Far fewer
//!   iterations on degenerate instances for one extra `O(nnz)` sweep per
//!   pivot;
//! * `PartialPricer` — sectioned (partial) pricing: candidate columns are
//!   scanned one chunk at a time through a rotating cursor, and — for very
//!   wide systems — the chunks of a round are priced concurrently on the
//!   rayon shim's scoped threads.  Cheapest per iteration on wide LPs.
//!
//! The rule is selected per solve through [`SolverTuning`] (see
//! [`LpBackend::open_with`](crate::LpBackend::open_with)); both solvers keep
//! Bland's rule as the termination-guaranteeing *last resort*, entered only
//! after [`bland_fallback_threshold`] pivots (a named, size-scaled bound —
//! previously two diverging magic formulas).

use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Reduced costs below `-EPS` qualify a column for entering the basis (the
/// same tolerance the solvers use).
const EPS: f64 = 1e-9;

/// Devex weights above this trigger a reference-framework reset (all weights
/// back to 1): the approximation has drifted too far from the reference frame
/// to stay meaningful.
const DEVEX_RESET: f64 = 1e7;

/// Baseline number of pivots under the configured pricer before the solver
/// falls back to Bland's rule.
pub const BLAND_FALLBACK_BASE: usize = 2_000;

/// Additional Bland-fallback pivots granted per row/column of the instance:
/// bigger systems legitimately pivot more, so the fallback — whose
/// termination guarantee costs an order of magnitude in iteration count —
/// must not engage on size alone.
pub const BLAND_FALLBACK_PER_DIM: usize = 4;

/// Number of pivots tolerated under the configured pricing rule before the
/// solver switches to Bland's rule as the cycling backstop of last resort.
///
/// Scales with problem size (`rows + cols` in standard form): the old
/// behavior — two diverging magic formulas that both collapsed to a flat
/// `2_000` — throttled large instances that were still making progress.
/// Anti-degeneracy now rests on the Harris ratio test and the bounded
/// right-hand-side perturbation; this threshold only guards genuine cycling.
pub fn bland_fallback_threshold(rows: usize, cols: usize) -> usize {
    BLAND_FALLBACK_BASE + BLAND_FALLBACK_PER_DIM * (rows + cols)
}

/// Relaxation of the feasibility tolerance used by the first pass of the
/// Harris ratio test: rows whose exact ratio lies within this slack of the
/// relaxed minimum are eligible, and the numerically largest pivot among
/// them wins.
pub(crate) const HARRIS_RELAX: f64 = 1e-7;

/// Consecutive degenerate pivots (step length ≈ 0) tolerated before the
/// solver engages the bounded right-hand-side perturbation.
pub(crate) const DEGEN_PIVOT_STREAK: usize = 64;

/// The bounded anti-degeneracy perturbation applied to a zero basic value:
/// a deterministic, row-unique nudge in `[PERTURB_EPS, 2·PERTURB_EPS)`.
///
/// Perturbing the *basic values* (the primal analogue of the classic cost
/// perturbation, which fights dual degeneracy) makes the tied ratio tests
/// that sustain a cycle pick distinct rows and strictly positive steps, so
/// no basis can repeat while the perturbation is live.  It is bounded well
/// below the feasibility tolerance, and it washes out at the next basis
/// refactorization (which recomputes the basic values from the pristine
/// right-hand sides) — solvers force one before extracting a solution.
/// Cost perturbation was rejected here: any cost noise above the `1e-9`
/// optimality tolerance masks barely-improving columns and stalls
/// convergence instead of helping it.
pub(crate) fn degeneracy_shift(row: usize, round: usize) -> f64 {
    // Cheap deterministic hash of the row index → a unique multiplier in
    // [1, 2), scaled up with each engagement round.  The round factor is
    // capped so the shift stays *bounded* — ≤ 2·PERTURB_EPS·PERTURB_MAX_ROUND
    // = 1.28e-7, safely under the 1e-6 feasibility tolerance — no matter how
    // often a pathological solve re-engages (re-engagements still act on
    // fresh basis states, so the cap does not weaken the tie-breaking).
    let h = (row.wrapping_mul(2_654_435_761) >> 8) % 1024;
    PERTURB_EPS * round.min(PERTURB_MAX_ROUND) as f64 * (1.0 + h as f64 / 1024.0)
}

/// Base magnitude of [`degeneracy_shift`]: far below the `1e-6` feasibility
/// tolerance, far above f64 noise at the problem scales the analysis emits.
pub(crate) const PERTURB_EPS: f64 = 1e-9;

/// Cap on the [`degeneracy_shift`] round multiplier (keeps the total shift
/// under the feasibility tolerance on solves that re-engage many times).
pub(crate) const PERTURB_MAX_ROUND: usize = 64;

/// The pricing rule a solver uses to choose entering columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Most negative reduced cost (the classic rule; cheapest per iteration,
    /// degenerates on long-chain global LPs).
    Dantzig,
    /// Approximate steepest edge with reference-framework resets (the
    /// default: far fewer iterations on degenerate instances).
    #[default]
    Devex,
    /// Sectioned pricing through a rotating cursor; chunks of very wide
    /// systems are priced in parallel on the rayon shim.
    Partial,
}

impl PricingRule {
    /// The rule's canonical CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            PricingRule::Dantzig => "dantzig",
            PricingRule::Devex => "devex",
            PricingRule::Partial => "partial",
        }
    }

    /// All rules, for matrix tests and sweeps.
    pub const ALL: [PricingRule; 3] = [
        PricingRule::Dantzig,
        PricingRule::Devex,
        PricingRule::Partial,
    ];

    /// Instantiates the pricer for a solve over `n_cols` standard-form
    /// columns.
    pub(crate) fn pricer(self, n_cols: usize) -> Box<dyn Pricer> {
        match self {
            PricingRule::Dantzig => Box::new(DantzigPricer),
            PricingRule::Devex => Box::new(DevexPricer::new(n_cols)),
            PricingRule::Partial => Box::new(PartialPricer::sized_for(n_cols)),
        }
    }
}

impl fmt::Display for PricingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PricingRule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dantzig" => Ok(PricingRule::Dantzig),
            "devex" => Ok(PricingRule::Devex),
            "partial" => Ok(PricingRule::Partial),
            other => Err(format!(
                "unknown pricing rule `{other}` (expected dantzig, devex, or partial)"
            )),
        }
    }
}

/// How the dual simplex prices *leaving rows* during warm feasibility
/// restoration.
///
/// Both rules score a violated row `i` by `violation² / γᵢ` and pick the
/// maximum; they differ in how the weights `γᵢ ≈ ‖(B⁻¹)ᵢ‖²` are maintained
/// across pivots.  `Steepest` keeps them *exact* (m btrans seed the true row
/// norms at restore start, then one extra ftran per pivot drives the
/// Forrest–Goldfarb recurrence); `Devex` starts from the all-ones reference
/// frame and uses the cheap one-sided update that only ever grows weights.
///
/// Devex is the default: on the hyper-degenerate chain systems this solver
/// exists for, the exact norms buy no fewer pivots (the scan is dominated
/// by ties the weights cannot break) while costing an extra solve per pivot
/// — see DESIGN.md §3.1 for the measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DualPricing {
    /// Approximate (devex-style) dual weights (the default): no extra solve
    /// per pivot.
    #[default]
    Devex,
    /// Exact dual steepest edge: reference weights seeded by true row norms
    /// and updated by the Forrest–Goldfarb recurrence, `τ = B⁻¹ρₚ` per pivot.
    Steepest,
}

impl DualPricing {
    /// The rule's canonical CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            DualPricing::Devex => "devex",
            DualPricing::Steepest => "steepest",
        }
    }

    /// All rules, for matrix tests and sweeps.
    pub const ALL: [DualPricing; 2] = [DualPricing::Devex, DualPricing::Steepest];
}

impl fmt::Display for DualPricing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DualPricing {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "devex" => Ok(DualPricing::Devex),
            "steepest" => Ok(DualPricing::Steepest),
            other => Err(format!(
                "unknown dual pricing rule `{other}` (expected devex or steepest)"
            )),
        }
    }
}

/// The dual-simplex ratio test used to choose the *entering column*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DualRatio {
    /// The classic single-breakpoint test: smallest ratio wins, largest
    /// `|α|` breaks ties (the pre-PR-9 behavior, kept as the reference).
    Harris,
    /// The bound-flipping (long-step) test (the default): breakpoints are
    /// passed — flipping boxed nonbasic columns bound-to-bound — for as long
    /// as the dual slope stays positive, so one pivot absorbs every reduced
    /// cost that changes sign instead of burning a degenerate pivot each.
    #[default]
    BoundFlip,
}

impl DualRatio {
    /// The test's canonical CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            DualRatio::Harris => "harris",
            DualRatio::BoundFlip => "bound-flip",
        }
    }

    /// All tests, for matrix tests and sweeps.
    pub const ALL: [DualRatio; 2] = [DualRatio::Harris, DualRatio::BoundFlip];
}

impl fmt::Display for DualRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DualRatio {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "harris" => Ok(DualRatio::Harris),
            "bound-flip" => Ok(DualRatio::BoundFlip),
            other => Err(format!(
                "unknown dual ratio test `{other}` (expected harris or bound-flip)"
            )),
        }
    }
}

/// A resource budget for one solver session, covering *every* `minimize`
/// (and warm re-solve, and in-session extension) the session performs: the
/// spend carries over, so a session's total cost is bounded no matter how
/// many times it is re-entered.
///
/// Exhausting any limb yields [`LpStatus::BudgetExhausted`](crate::LpStatus::BudgetExhausted)
/// — a statement about *resources*, never about feasibility.  A budgeted
/// solve that runs out of budget makes no claim the unbudgeted solve would
/// not make; in particular it must never be treated as an infeasibility
/// proof (see the backend contract in [`backend`](crate::backend)).
///
/// All limbs default to `None` (unlimited); `SolveBudget::default()` is the
/// unbudgeted solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveBudget {
    /// Wall-clock deadline.  Checked cooperatively once per pivot batch
    /// (every `DEADLINE_CHECK_PERIOD` pivots and at every
    /// refactorization), so overshoot is bounded by a batch of pivots.
    pub deadline: Option<Instant>,
    /// Cap on total simplex iterations (primal and dual pivots both count)
    /// across the session's lifetime.
    pub max_iters: Option<usize>,
    /// Cap on total basis refactorizations across the session's lifetime.
    pub max_refactorizations: Option<usize>,
}

/// Default pivots between cooperative deadline checks
/// ([`SolverTuning::deadline_check_period`]): `Instant::now()` per pivot
/// would dominate small pivots, and the refresh period (100) is too coarse
/// for tight timeouts on expensive pivots.
pub const DEADLINE_CHECK_PERIOD: usize = 16;

impl SolveBudget {
    /// The unlimited budget (every limb `None`).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        deadline: None,
        max_iters: None,
        max_refactorizations: None,
    };

    /// A budget with only a wall-clock deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> SolveBudget {
        SolveBudget {
            deadline: Some(Instant::now() + timeout),
            ..SolveBudget::UNLIMITED
        }
    }

    /// A budget with only an iteration cap.
    pub fn with_max_iters(max_iters: usize) -> SolveBudget {
        SolveBudget {
            max_iters: Some(max_iters),
            ..SolveBudget::UNLIMITED
        }
    }

    /// Whether no limb is set (the default, unbudgeted solve).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iters.is_none() && self.max_refactorizations.is_none()
    }

    /// Whether the wall-clock deadline (if any) has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Iterations remaining before the cap, given `spent` so far
    /// (`usize::MAX` when uncapped).
    pub fn iters_remaining(&self, spent: usize) -> usize {
        match self.max_iters {
            Some(cap) => cap.saturating_sub(spent),
            None => usize::MAX,
        }
    }

    /// Refactorizations remaining before the cap, given `spent` so far
    /// (`usize::MAX` when uncapped).
    pub fn refactorizations_remaining(&self, spent: usize) -> usize {
        match self.max_refactorizations {
            Some(cap) => cap.saturating_sub(spent),
            None => usize::MAX,
        }
    }
}

/// Per-solve tuning knobs threaded from the analysis down to the solvers
/// (see [`LpBackend::open_with`](crate::LpBackend::open_with)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverTuning {
    /// The pricing rule used to choose entering columns.
    pub pricing: PricingRule,
    /// Whether the presolve pass runs at session open (drop empty/fixed
    /// columns, substitute singleton rows, remove duplicate rows).
    pub presolve: bool,
    /// The basis factorization the simplex core solves with (dense `B⁻¹`
    /// or Markowitz LU with eta updates; see [`FactorKind`](crate::factor::FactorKind)).
    pub factor: crate::factor::FactorKind,
    /// How warm sessions re-solve after incremental rows (dual-simplex
    /// pivots by default, or the legacy phase-1 restart; see
    /// [`WarmStrategy`](crate::factor::WarmStrategy)).
    pub warm: crate::factor::WarmStrategy,
    /// Resource budget for the whole session (deadline, iteration and
    /// refactorization caps; default unlimited).  The spend carries over
    /// across every minimize/re-solve of the session.
    pub budget: SolveBudget,
    /// How the dual simplex prices leaving rows during warm restoration
    /// (devex by default; see [`DualPricing`]).
    pub dual_pricing: DualPricing,
    /// The dual-simplex ratio test (bound-flipping long step by default;
    /// see [`DualRatio`]).
    pub dual_ratio: DualRatio,
    /// Pivots between cooperative wall-clock deadline checks (default
    /// [`DEADLINE_CHECK_PERIOD`]).  Hostile-timeout tests tighten this to 1
    /// to bound overshoot by a single pivot; `0` is treated as 1.
    pub deadline_check_period: usize,
}

impl Default for SolverTuning {
    fn default() -> Self {
        SolverTuning {
            pricing: PricingRule::default(),
            presolve: true,
            factor: crate::factor::FactorKind::default(),
            warm: crate::factor::WarmStrategy::default(),
            budget: SolveBudget::default(),
            dual_pricing: DualPricing::default(),
            dual_ratio: DualRatio::default(),
            deadline_check_period: DEADLINE_CHECK_PERIOD,
        }
    }
}

impl SolverTuning {
    /// Tuning with the given pricing rule and everything else at defaults.
    pub fn with_pricing(pricing: PricingRule) -> Self {
        SolverTuning {
            pricing,
            ..SolverTuning::default()
        }
    }

    /// Tuning with the given factorization and everything else at defaults.
    pub fn with_factor(factor: crate::factor::FactorKind) -> Self {
        SolverTuning {
            factor,
            ..SolverTuning::default()
        }
    }

    /// Tuning with the given budget and everything else at defaults.
    pub fn with_budget(budget: SolveBudget) -> Self {
        SolverTuning {
            budget,
            ..SolverTuning::default()
        }
    }
}

/// Everything a pricer may inspect when observing a pivot: the pre-pivot
/// pivot-row entries `alpha(j) = (B⁻¹A)_pj` (devex weight updates need them)
/// plus which columns entered and left.
pub(crate) struct PivotView<'a> {
    /// The column entering the basis.
    pub entering: usize,
    /// The column leaving the basis.
    pub leaving: usize,
    /// The pivot element `alpha(entering)`.
    pub alpha_q: f64,
    /// Number of standard-form columns.
    pub n_cols: usize,
    /// Whether a column is a pricing candidate (nonbasic and not banned).
    pub candidate: &'a (dyn Fn(usize) -> bool + Sync),
    /// Pre-pivot pivot-row entry of a column.
    pub alpha: &'a (dyn Fn(usize) -> f64 + Sync),
    /// When the pivot row came off the hyper-sparse kernel path: the exact
    /// set of columns with `alpha(j) ≠ 0` (may contain duplicates — weight
    /// updates are idempotent).  Every other column's entry is an exact
    /// zero.  `None` means the row is dense and every column must be
    /// visited.
    pub touched: Option<&'a [usize]>,
}

/// A pricing rule instance, stateful across the iterations of one solve.
///
/// `select` picks the entering column among candidates whose reduced cost
/// prices below `-EPS`; `observe_pivot` lets weight-based rules update their
/// state from the pivot row.  Implementations must be deterministic: the
/// same sequence of views yields the same selections (a backend contract
/// obligation).
pub(crate) trait Pricer {
    /// Chooses the entering column, or `None` when no candidate improves.
    fn select(
        &mut self,
        n_cols: usize,
        candidate: &(dyn Fn(usize) -> bool + Sync),
        reduced_cost: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Option<usize>;

    /// Observes the pivot performed on the previously selected column.
    fn observe_pivot(&mut self, view: &PivotView<'_>) {
        let _ = view;
    }
}

/// Most negative reduced cost.
pub(crate) struct DantzigPricer;

impl Pricer for DantzigPricer {
    fn select(
        &mut self,
        n_cols: usize,
        candidate: &(dyn Fn(usize) -> bool + Sync),
        reduced_cost: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Option<usize> {
        let mut best = None;
        let mut best_rc = -EPS;
        for j in 0..n_cols {
            if !candidate(j) {
                continue;
            }
            let rc = reduced_cost(j);
            if rc < best_rc {
                best_rc = rc;
                best = Some(j);
            }
        }
        best
    }
}

/// Approximate steepest edge (devex) with reference-framework resets.
pub(crate) struct DevexPricer {
    weights: Vec<f64>,
    /// Columns whose weight may exceed [`DEVEX_RESET`].  Only the
    /// post-scan leaving-column assignment can park a weight above the
    /// reset threshold without tripping the reset (an in-scan update that
    /// high trips it immediately), so tracking those few columns lets the
    /// touched-only path decide the reset exactly as the full scan would
    /// — without visiting every candidate weight.  May carry stale
    /// entries; they are pruned lazily.
    hot: Vec<usize>,
}

impl DevexPricer {
    pub(crate) fn new(n_cols: usize) -> Self {
        DevexPricer {
            weights: vec![1.0; n_cols],
            hot: Vec::new(),
        }
    }

    fn ensure(&mut self, n_cols: usize) {
        if self.weights.len() < n_cols {
            self.weights.resize(n_cols, 1.0);
        }
    }
}

impl Pricer for DevexPricer {
    fn select(
        &mut self,
        n_cols: usize,
        candidate: &(dyn Fn(usize) -> bool + Sync),
        reduced_cost: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Option<usize> {
        self.ensure(n_cols);
        let mut best = None;
        let mut best_score = 0.0;
        for j in 0..n_cols {
            if !candidate(j) {
                continue;
            }
            let rc = reduced_cost(j);
            if rc < -EPS {
                let score = rc * rc / self.weights[j];
                if score > best_score {
                    best_score = score;
                    best = Some(j);
                }
            }
        }
        best
    }

    fn observe_pivot(&mut self, view: &PivotView<'_>) {
        self.ensure(view.n_cols);
        let aq2 = view.alpha_q * view.alpha_q;
        if aq2 < 1e-20 {
            return;
        }
        // Reference weight carried by the entering column, propagated to the
        // rest of the framework through the pivot row.
        let ratio = (self.weights[view.entering] / aq2).max(1.0 / aq2);
        // Whether any candidate's post-update weight exceeds the reset
        // threshold — exactly the `max_weight > DEVEX_RESET` verdict of a
        // full scan.
        let mut trip = false;
        match view.touched {
            // Touched-only path: candidates off the list have an exactly
            // zero pivot-row entry, so their weights are unchanged — only
            // `hot` carry-overs can push the scan's maximum past the
            // threshold without being updated here.
            Some(touched) => {
                for &j in touched {
                    if j == view.entering || !(view.candidate)(j) {
                        continue;
                    }
                    let a = (view.alpha)(j);
                    if a != 0.0 {
                        let w = a * a * ratio;
                        if w > self.weights[j] {
                            self.weights[j] = w;
                        }
                        trip = trip || self.weights[j] > DEVEX_RESET;
                    }
                }
                let weights = &self.weights;
                self.hot.retain(|&j| weights[j] > DEVEX_RESET);
                trip = trip
                    || self
                        .hot
                        .iter()
                        .any(|&j| j != view.entering && (view.candidate)(j));
            }
            None => {
                for j in 0..view.n_cols {
                    if j == view.entering || !(view.candidate)(j) {
                        continue;
                    }
                    let a = (view.alpha)(j);
                    if a != 0.0 {
                        let w = a * a * ratio;
                        if w > self.weights[j] {
                            self.weights[j] = w;
                        }
                    }
                    trip = trip || self.weights[j] > DEVEX_RESET;
                }
                let weights = &self.weights;
                self.hot.retain(|&j| weights[j] > DEVEX_RESET);
            }
        }
        // The leaving column re-enters the nonbasic pool with the reference
        // weight of the pivot.
        self.weights[view.leaving] = ratio.max(1.0);
        if trip {
            // Reference-framework reset: the approximation drifted too far.
            for w in &mut self.weights {
                *w = 1.0;
            }
            self.hot.clear();
        } else if self.weights[view.leaving] > DEVEX_RESET && !self.hot.contains(&view.leaving) {
            self.hot.push(view.leaving);
        }
    }
}

/// Sectioned (partial) pricing with an optional parallel scan for very wide
/// systems.
pub(crate) struct PartialPricer {
    /// Section (chunk) size in columns.
    section: usize,
    /// Ring cursor: the section where the last entering column was found
    /// (scanning resumes there).
    cursor: usize,
    /// Column count at or above which the sections of a round are priced
    /// concurrently.
    parallel_min: usize,
    /// Sections priced concurrently per round when the parallel path is on.
    round: usize,
    /// Reusable per-round result slots (one per concurrent section) — the
    /// parallel scan must not allocate per pivot.
    slots: Vec<Option<(usize, f64)>>,
}

/// Below this width a parallel scan cannot amortize thread spawns (the rayon
/// shim spawns OS threads per scope): sequential sectioned scanning wins.
const PARTIAL_PARALLEL_MIN_COLS: usize = 16_384;

impl PartialPricer {
    /// A pricer with section size adapted to the instance width.
    pub(crate) fn sized_for(n_cols: usize) -> Self {
        PartialPricer::with_params(
            (n_cols / 8).clamp(64, 1024),
            PARTIAL_PARALLEL_MIN_COLS,
            rayon::current_num_threads().clamp(2, 4),
        )
    }

    /// Explicit parameters (tests use this to force the parallel path).
    pub(crate) fn with_params(section: usize, parallel_min: usize, round: usize) -> Self {
        PartialPricer {
            section: section.max(1),
            cursor: 0,
            parallel_min,
            round: round.max(1),
            slots: Vec::new(),
        }
    }

    fn best_in(
        lo: usize,
        hi: usize,
        candidate: &(dyn Fn(usize) -> bool + Sync),
        reduced_cost: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Option<(usize, f64)> {
        let mut best = None;
        let mut best_rc = -EPS;
        for j in lo..hi {
            if !candidate(j) {
                continue;
            }
            let rc = reduced_cost(j);
            if rc < best_rc {
                best_rc = rc;
                best = Some((j, rc));
            }
        }
        best
    }
}

impl Pricer for PartialPricer {
    fn select(
        &mut self,
        n_cols: usize,
        candidate: &(dyn Fn(usize) -> bool + Sync),
        reduced_cost: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Option<usize> {
        if n_cols == 0 {
            return None;
        }
        let sections = n_cols.div_ceil(self.section);
        if self.cursor >= sections {
            self.cursor = 0;
        }
        let parallel = n_cols >= self.parallel_min && self.round > 1;
        let stride = if parallel { self.round } else { 1 };
        let mut scanned = 0usize;
        while scanned < sections {
            let in_round = stride.min(sections - scanned);
            let found = if in_round == 1 {
                let s = (self.cursor + scanned) % sections;
                let lo = s * self.section;
                Self::best_in(lo, (lo + self.section).min(n_cols), candidate, reduced_cost)
                    .map(|(j, _)| (s, j))
            } else {
                // Price the round's sections concurrently; the winner is the
                // first section *in ring order* with a candidate, so the
                // outcome does not depend on thread timing.
                self.slots.clear();
                self.slots.resize(in_round, None);
                let slots = &mut self.slots;
                rayon::scope(|scope| {
                    for (k, slot) in slots.iter_mut().enumerate() {
                        let s = (self.cursor + scanned + k) % sections;
                        let lo = s * self.section;
                        let hi = (lo + self.section).min(n_cols);
                        scope.spawn(move || {
                            *slot = Self::best_in(lo, hi, candidate, reduced_cost);
                        });
                    }
                });
                slots.iter().enumerate().find_map(|(k, slot)| {
                    slot.map(|(j, _)| ((self.cursor + scanned + k) % sections, j))
                })
            };
            if let Some((s, j)) = found {
                self.cursor = s;
                return Some(j);
            }
            scanned += in_round;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(_: usize) -> bool {
        true
    }

    #[test]
    fn bland_threshold_scales_with_problem_size() {
        assert_eq!(bland_fallback_threshold(0, 0), BLAND_FALLBACK_BASE);
        assert_eq!(
            bland_fallback_threshold(100, 400),
            BLAND_FALLBACK_BASE + 500 * BLAND_FALLBACK_PER_DIM
        );
        // Monotone in both dimensions — bigger instances get more headroom
        // before the slow Bland backstop engages.
        assert!(bland_fallback_threshold(10, 10) < bland_fallback_threshold(10, 1000));
        assert!(bland_fallback_threshold(10, 10) < bland_fallback_threshold(1000, 10));
    }

    #[test]
    fn degeneracy_shift_stays_bounded_and_row_unique() {
        let bound = 2.0 * PERTURB_EPS * PERTURB_MAX_ROUND as f64;
        assert!(
            bound < 1e-6,
            "shift bound must stay under the feasibility tolerance"
        );
        for round in [1, PERTURB_MAX_ROUND, 10_000] {
            for row in 0..100 {
                let shift = degeneracy_shift(row, round);
                assert!(
                    shift > 0.0 && shift <= bound,
                    "round {round} row {row}: {shift}"
                );
            }
        }
        // Distinct rows get distinct nudges (the tie-breaking property)…
        assert_ne!(degeneracy_shift(0, 1), degeneracy_shift(1, 1));
        // …and runaway rounds saturate at the cap instead of growing.
        assert_eq!(
            degeneracy_shift(3, 10_000),
            degeneracy_shift(3, PERTURB_MAX_ROUND)
        );
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in PricingRule::ALL {
            assert_eq!(rule.name().parse::<PricingRule>().unwrap(), rule);
            assert_eq!(rule.to_string(), rule.name());
        }
        assert!("steepest-edge".parse::<PricingRule>().is_err());
        assert_eq!(PricingRule::default(), PricingRule::Devex);
        assert!(SolverTuning::default().presolve);
        assert_eq!(
            SolverTuning::with_pricing(PricingRule::Partial).pricing,
            PricingRule::Partial
        );
    }

    #[test]
    fn dual_knob_names_round_trip() {
        for rule in DualPricing::ALL {
            assert_eq!(rule.name().parse::<DualPricing>().unwrap(), rule);
            assert_eq!(rule.to_string(), rule.name());
        }
        for test in DualRatio::ALL {
            assert_eq!(test.name().parse::<DualRatio>().unwrap(), test);
            assert_eq!(test.to_string(), test.name());
        }
        assert!("dantzig".parse::<DualPricing>().is_err());
        assert!("bland".parse::<DualRatio>().is_err());
        let tuning = SolverTuning::default();
        assert_eq!(tuning.dual_pricing, DualPricing::Devex);
        assert_eq!(tuning.dual_ratio, DualRatio::BoundFlip);
        assert_eq!(tuning.deadline_check_period, DEADLINE_CHECK_PERIOD);
    }

    #[test]
    fn dantzig_picks_most_negative() {
        let rc = [0.5, -1.0, -3.0, -2.0];
        let sel = DantzigPricer.select(4, &all, &|j| rc[j]);
        assert_eq!(sel, Some(2));
        // Candidates can be masked out.
        let sel = DantzigPricer.select(4, &|j| j != 2, &|j| rc[j]);
        assert_eq!(sel, Some(3));
        // Nothing prices below the tolerance.
        assert_eq!(DantzigPricer.select(4, &all, &|_| 0.0), None);
    }

    #[test]
    fn devex_prefers_low_weight_columns_and_resets() {
        let mut devex = DevexPricer::new(3);
        // Equal weights: degenerate to Dantzig (by squared cost).
        assert_eq!(devex.select(3, &all, &|j| [-1.0, -2.0, -1.5][j]), Some(1));
        // A pivot whose row loads column 1 heavily raises its weight…
        devex.observe_pivot(&PivotView {
            entering: 1,
            leaving: 0,
            alpha_q: 0.5,
            n_cols: 3,
            candidate: &all,
            alpha: &|j| [0.0, 0.5, 40.0][j],
            touched: None,
        });
        // …so column 2 (weight exploded) loses to column 1's replacement
        // score even at a slightly larger reduced cost.
        assert_eq!(devex.select(3, &all, &|j| [-1.0, -0.1, -1.5][j]), Some(0));
        // Overflowing weights reset the reference framework.
        devex.observe_pivot(&PivotView {
            entering: 0,
            leaving: 1,
            alpha_q: 1e-5,
            n_cols: 3,
            candidate: &all,
            alpha: &|_| 1e3,
            touched: None,
        });
        assert!(
            devex.weights.iter().all(|&w| w == 1.0),
            "{:?}",
            devex.weights
        );
    }

    #[test]
    fn devex_touched_path_matches_full_scan() {
        // Two pricers fed the same pivot sequence — one through the full
        // scan, one through the touched-only path — must evolve identical
        // weights, including the reference-framework reset triggered by a
        // column whose weight was parked above the threshold by an earlier
        // leaving assignment and that no later pivot row touches.
        let mut dense = DevexPricer::new(6);
        let mut sparse = DevexPricer::new(6);
        // Pivot 1: a tiny pivot element explodes the reference ratio, so
        // the leaving column 1 re-enters the pool with weight 1e8 — above
        // DEVEX_RESET, but parked *after* the scan, so no reset fires.
        let alphas1 = [0.0, 0.0, 1e-3, 1e-3, 0.0, 0.0];
        for (pricer, touched) in [(&mut dense, None), (&mut sparse, Some(&[2usize, 3][..]))] {
            pricer.observe_pivot(&PivotView {
                entering: 0,
                leaving: 1,
                alpha_q: 1e-4,
                n_cols: 6,
                candidate: &|j| j != 0,
                alpha: &|j| alphas1[j],
                touched,
            });
        }
        assert_eq!(dense.weights, sparse.weights);
        assert!(dense.weights[1] > DEVEX_RESET, "{:?}", dense.weights);
        // Pivot 2 does not touch column 1, but its oversized weight must
        // still trip the reset on both paths (the full scan sees it
        // directly, the touched-only path through its hot set).
        let alphas2 = [0.0, 0.0, 0.0, 0.0, 0.5, 0.0];
        for (pricer, touched) in [(&mut dense, None), (&mut sparse, Some(&[4usize][..]))] {
            pricer.observe_pivot(&PivotView {
                entering: 2,
                leaving: 3,
                alpha_q: 1.0,
                n_cols: 6,
                candidate: &|j| j != 2,
                alpha: &|j| alphas2[j],
                touched,
            });
        }
        assert_eq!(dense.weights, sparse.weights);
        assert!(
            sparse.weights.iter().all(|&w| w == 1.0),
            "{:?}",
            sparse.weights
        );
    }

    #[test]
    fn partial_rotates_sections_and_matches_sequential_in_parallel_mode() {
        // 1024 columns, improving candidates sprinkled around; the parallel
        // path (forced by parallel_min = 0) must pick exactly what the
        // sequential path picks — the ring-order-first section's best.
        let rc = |j: usize| {
            if j % 257 == 5 {
                -((j % 7) as f64) - 1.0
            } else {
                1.0
            }
        };
        let mut seq = PartialPricer::with_params(128, usize::MAX, 1);
        let mut par = PartialPricer::with_params(128, 0, 3);
        for _ in 0..10 {
            let a = seq.select(1024, &all, &rc);
            let b = par.select(1024, &all, &rc);
            assert_eq!(a, b);
            assert!(a.is_some());
        }
        // No candidates at all: both report None.
        assert_eq!(seq.select(1024, &all, &|_| 1.0), None);
        assert_eq!(par.select(1024, &all, &|_| 1.0), None);
    }

    #[test]
    fn partial_cursor_resumes_where_it_found_work() {
        let mut p = PartialPricer::with_params(4, usize::MAX, 1);
        // Only column 9 improves → found in section 2; cursor parks there.
        assert_eq!(
            p.select(16, &all, &|j| if j == 9 { -1.0 } else { 1.0 }),
            Some(9)
        );
        assert_eq!(p.cursor, 2);
        // Next call starts scanning at section 2 and finds column 11 first
        // even though column 1 also improves now.
        let rc = |j: usize| if j == 11 || j == 1 { -1.0 } else { 1.0 };
        assert_eq!(p.select(16, &all, &rc), Some(11));
    }
}
