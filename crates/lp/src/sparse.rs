//! Compressed sparse row (CSR) matrices.
//!
//! The constraint systems of the central-moment analysis are extremely sparse:
//! each derivation rule touches a handful of template coefficients, so a row
//! of the LP typically has 2–10 nonzeros out of hundreds or thousands of
//! columns.  [`SparseMatrix`] is the shared representation: [`LpProblem`]
//! stores its constraint rows in one, the dense simplex scatters rows into
//! its tableau from it, and the revised simplex of [`SparseBackend`] works on
//! it (and its transpose) directly.
//!
//! [`LpProblem`]: crate::LpProblem
//! [`SparseBackend`]: crate::SparseBackend

/// A growable sparse matrix in CSR (compressed sparse row) form.
///
/// Rows are appended with [`push_row`](SparseMatrix::push_row); within a row,
/// entries are kept sorted by column with duplicate columns accumulated and
/// exact zeros dropped.  The column count grows automatically to cover the
/// largest column index seen (and can be raised explicitly with
/// [`grow_cols`](SparseMatrix::grow_cols)).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    ncols: usize,
}

impl Default for SparseMatrix {
    fn default() -> Self {
        SparseMatrix::new()
    }
}

impl SparseMatrix {
    /// An empty matrix with no rows and no columns.
    pub fn new() -> Self {
        SparseMatrix {
            row_ptr: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
            ncols: 0,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns (the widest row seen, or the explicit width).
    pub fn num_cols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Ensures the matrix is at least `ncols` wide.
    pub fn grow_cols(&mut self, ncols: usize) {
        self.ncols = self.ncols.max(ncols);
    }

    /// Appends a row given as `(column, value)` entries in any order.
    /// Duplicate columns accumulate; entries that sum to exactly zero are
    /// dropped.  Returns the new row's index.
    pub fn push_row(&mut self, entries: impl IntoIterator<Item = (usize, f64)>) -> usize {
        let start = self.vals.len();
        for (col, val) in entries {
            self.ncols = self.ncols.max(col + 1);
            self.cols.push(col);
            self.vals.push(val);
        }
        // Sort the freshly appended segment by column and merge duplicates.
        let mut entries: Vec<(usize, f64)> = self.cols[start..]
            .iter()
            .copied()
            .zip(self.vals[start..].iter().copied())
            .collect();
        entries.sort_by_key(|&(c, _)| c);
        self.cols.truncate(start);
        self.vals.truncate(start);
        for (col, val) in entries {
            if self.cols.len() > start && *self.cols.last().unwrap() == col {
                *self.vals.last_mut().unwrap() += val;
            } else {
                self.cols.push(col);
                self.vals.push(val);
            }
        }
        // Drop exact zeros produced by cancellation.
        let mut write = start;
        for read in start..self.cols.len() {
            if self.vals[read] != 0.0 {
                self.cols[write] = self.cols[read];
                self.vals[write] = self.vals[read];
                write += 1;
            }
        }
        self.cols.truncate(write);
        self.vals.truncate(write);
        self.row_ptr.push(self.vals.len());
        self.num_rows() - 1
    }

    /// The entries of row `i` as parallel `(columns, values)` slices.
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Iterates over the `(column, value)` entries of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row_entries(i);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// The dot product of row `i` with a dense vector (missing tail entries
    /// of `x` count as zero).
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        self.row(i)
            .map(|(c, v)| v * x.get(c).copied().unwrap_or(0.0))
            .sum()
    }

    /// The transpose (a CSC view of the same data, itself in CSR form: row
    /// `j` of the result lists the entries of column `j`).
    pub fn transpose(&self) -> SparseMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.cols {
            counts[c] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.ncols + 1);
        row_ptr.push(0);
        for c in 0..self.ncols {
            row_ptr.push(row_ptr[c] + counts[c]);
        }
        let mut cols = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for i in 0..self.num_rows() {
            for (c, v) in self.row(i) {
                let slot = next[c];
                cols[slot] = i;
                vals[slot] = v;
                next[c] += 1;
            }
        }
        SparseMatrix {
            row_ptr,
            cols,
            vals,
            ncols: self.num_rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_sorts_merges_and_drops_zeros() {
        let mut m = SparseMatrix::new();
        let r = m.push_row([(3, 1.0), (0, 2.0), (3, 2.0), (1, 1.5), (1, -1.5)]);
        assert_eq!(r, 0);
        assert_eq!(m.num_rows(), 1);
        assert_eq!(m.num_cols(), 4);
        let entries: Vec<_> = m.row(0).collect();
        assert_eq!(entries, vec![(0, 2.0), (3, 3.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_representable() {
        let mut m = SparseMatrix::new();
        m.push_row([]);
        m.push_row([(2, 1.0)]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(1).count(), 1);
    }

    #[test]
    fn row_dot_ignores_missing_tail() {
        let mut m = SparseMatrix::new();
        m.push_row([(0, 2.0), (5, 3.0)]);
        assert_eq!(m.row_dot(0, &[4.0]), 8.0);
        assert_eq!(m.row_dot(0, &[4.0, 0.0, 0.0, 0.0, 0.0, 1.0]), 11.0);
    }

    #[test]
    fn transpose_round_trips() {
        let mut m = SparseMatrix::new();
        m.push_row([(0, 1.0), (2, 2.0)]);
        m.push_row([(1, 3.0)]);
        m.push_row([(0, -1.0), (1, 4.0), (2, 5.0)]);
        let t = m.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        let col0: Vec<_> = t.row(0).collect();
        assert_eq!(col0, vec![(0, 1.0), (2, -1.0)]);
        let back = t.transpose();
        for i in 0..m.num_rows() {
            assert_eq!(
                m.row(i).collect::<Vec<_>>(),
                back.row(i).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn grow_cols_widens_without_entries() {
        let mut m = SparseMatrix::new();
        m.push_row([(1, 1.0)]);
        assert_eq!(m.num_cols(), 2);
        m.grow_cols(10);
        assert_eq!(m.num_cols(), 10);
        m.grow_cols(4);
        assert_eq!(m.num_cols(), 10);
    }
}
