//! LP presolve: problem reductions applied at session open.
//!
//! The constraint systems the template-based analysis emits carry removable
//! structure: singleton equality rows that pin a template coefficient,
//! duplicate rows emitted by overlapping derivation obligations, and columns
//! no constraint mentions.  Shrinking the system *before* the simplex runs
//! shrinks the basis (and with it every `O(m²)` iteration and `O(m³)`
//! refactorization), so [`presolve`] runs by default whenever a backend
//! opens a session (see [`SolverTuning::presolve`](crate::SolverTuning)).
//!
//! Reductions, iterated to a fixpoint:
//!
//! * **fixed columns** — a singleton `a·x = b` row fixes `x = b/a` (and a
//!   singleton `a·x ≤ 0`-shaped row over a non-negative `x` fixes `x = 0`);
//!   the value is substituted into every other row and the column dropped;
//! * **redundant / violated rows** — rows emptied by substitution are
//!   checked and dropped (or flag the whole system infeasible), and
//!   singleton inequality rows implied by a variable's non-negativity are
//!   dropped;
//! * **duplicate rows** — rows identical after sign/scale canonicalization
//!   collapse to the tightest right-hand side (equal-pattern `=` rows with
//!   incompatible right-hand sides prove infeasibility);
//! * **empty columns** — columns left unreferenced by every surviving row
//!   are dropped from the matrix; their optimal value is decided per
//!   objective at `minimize` time (0, or the whole problem is unbounded).
//!
//! [`PresolvedSession`] wraps the backend's real session over the reduced
//! problem behind the *original* id space, so presolve composes with the
//! session contract: incrementally added rows substitute fixed columns,
//! re-materialize dropped columns they mention, and keep
//! `num_vars`/`num_constraints` counting caller-visible entities.  Each
//! solution is *postsolved* — the full primal point is reconstructed and the
//! objective re-evaluated over it — before it reaches the caller.

use crate::backend::LpSession;
use crate::simplex::{Cmp, LpProblem, LpSolution, LpStatus, LpVarId, SolveStats};

const EPS: f64 = 1e-9;
/// Feasibility tolerance for constant rows produced by substitution.
const FEAS_EPS: f64 = 1e-7;

/// What became of an original (or session-added) column.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ColFate {
    /// Survives as column `r` of the reduced problem.
    Kept(usize),
    /// Fixed to a constant by a singleton row; substituted out.
    Fixed(f64),
    /// Referenced by no surviving row; dropped from the matrix (value decided
    /// against the objective at `minimize`, re-materialized if a later
    /// incremental row mentions it).
    Dropped,
}

/// The outcome of [`presolve`]: the reduced problem plus everything needed
/// to map sessions and solutions back to the original id space.
pub(crate) struct Presolved {
    reduced: LpProblem,
    col_fate: Vec<ColFate>,
    /// Original free flags (needed to judge dropped columns at minimize).
    free: Vec<bool>,
    /// Original variable names (for re-materialized columns).
    names: Vec<String>,
    /// Original row count (sessions keep counting caller-visible rows).
    num_rows: usize,
    /// The presolve proved the row system infeasible outright.
    infeasible: bool,
    rows_dropped: usize,
    cols_dropped: usize,
}

/// One mutable row during presolve.
#[derive(Debug, Clone)]
struct WorkRow {
    terms: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
    alive: bool,
}

/// Runs the reduction passes over `problem` (objective ignored — sessions
/// receive objectives per `minimize`).
pub(crate) fn presolve(problem: &LpProblem) -> Presolved {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut rows: Vec<WorkRow> = (0..m)
        .map(|i| WorkRow {
            terms: problem.matrix().row(i).collect(),
            cmp: problem.cmp(i),
            rhs: problem.rhs(i),
            alive: true,
        })
        .collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut infeasible = false;

    // Iterate substitution + singleton detection + duplicate removal until
    // nothing changes (each pass strictly removes rows or fixes columns, so
    // the loop terminates; the cap is belt and braces).
    for _pass in 0..usize::max(4, n) {
        let mut changed = false;
        for row in rows.iter_mut() {
            if !row.alive {
                continue;
            }
            // Substitute the columns fixed so far.
            row.terms.retain(|&(c, a)| {
                if let Some(v) = fixed[c] {
                    row.rhs -= a * v;
                    changed = true;
                    false
                } else {
                    true
                }
            });
            if row.terms.is_empty() {
                // A constant row: satisfied (drop) or a contradiction.
                let ok = match row.cmp {
                    Cmp::Le => row.rhs >= -FEAS_EPS,
                    Cmp::Ge => row.rhs <= FEAS_EPS,
                    Cmp::Eq => row.rhs.abs() <= FEAS_EPS,
                };
                if !ok {
                    infeasible = true;
                }
                row.alive = false;
                changed = true;
                continue;
            }
            if row.terms.len() == 1 {
                let (c, a) = row.terms[0];
                if a.abs() <= EPS {
                    continue;
                }
                let bound = row.rhs / a;
                let is_free = problem.is_free(LpVarId::from_index(c));
                match row.cmp {
                    Cmp::Eq => {
                        if !is_free && bound < -FEAS_EPS {
                            infeasible = true;
                        } else {
                            fixed[c] = Some(if is_free { bound } else { bound.max(0.0) });
                        }
                        row.alive = false;
                        changed = true;
                    }
                    Cmp::Le | Cmp::Ge if !is_free => {
                        // Normalized direction of the singleton bound.
                        let lower = (row.cmp == Cmp::Ge) == (a > 0.0);
                        if lower && bound <= FEAS_EPS {
                            // x ≥ bound ≤ 0: implied by non-negativity.
                            row.alive = false;
                            changed = true;
                        } else if !lower && bound < -FEAS_EPS {
                            // x ≤ bound < 0: contradicts non-negativity.
                            infeasible = true;
                            row.alive = false;
                            changed = true;
                        } else if !lower && bound <= FEAS_EPS {
                            // x ≤ 0 and x ≥ 0: fixed at zero.
                            fixed[c] = Some(0.0);
                            row.alive = false;
                            changed = true;
                        }
                        // A genuine upper/lower bound stays a row: the
                        // standard form has no bound constraints.
                    }
                    _ => {}
                }
            }
        }
        if infeasible {
            break;
        }
        changed |= drop_duplicate_rows(&mut rows, &mut infeasible);
        if !changed || infeasible {
            break;
        }
    }

    // Column occupancy over the surviving rows.
    let mut occupied = vec![false; n];
    if !infeasible {
        for row in rows.iter().filter(|r| r.alive) {
            for &(c, _) in &row.terms {
                occupied[c] = true;
            }
        }
    }
    let mut col_fate = Vec::with_capacity(n);
    let mut reduced = LpProblem::new();
    let mut cols_dropped = 0usize;
    for c in 0..n {
        let var = LpVarId::from_index(c);
        if let Some(v) = fixed[c] {
            col_fate.push(ColFate::Fixed(v));
            cols_dropped += 1;
        } else if occupied[c] {
            let id = reduced.add_var(problem.var_name(var), problem.is_free(var));
            col_fate.push(ColFate::Kept(id.index()));
        } else {
            col_fate.push(ColFate::Dropped);
            cols_dropped += 1;
        }
    }
    let mut rows_kept = 0usize;
    if !infeasible {
        for row in rows.iter().filter(|r| r.alive) {
            let terms: Vec<(LpVarId, f64)> = row
                .terms
                .iter()
                .map(|&(c, a)| match col_fate[c] {
                    ColFate::Kept(r) => (LpVarId::from_index(r), a),
                    _ => unreachable!("surviving rows only reference kept columns"),
                })
                .collect();
            reduced.add_constraint(terms, row.cmp, row.rhs);
            rows_kept += 1;
        }
    }

    Presolved {
        reduced,
        col_fate,
        free: (0..n)
            .map(|c| problem.is_free(LpVarId::from_index(c)))
            .collect(),
        names: (0..n)
            .map(|c| problem.var_name(LpVarId::from_index(c)).to_string())
            .collect(),
        num_rows: m,
        infeasible,
        rows_dropped: m - rows_kept,
        cols_dropped,
    }
}

/// Collapses rows that are identical after canonicalization (scale so the
/// leading coefficient is `+1`, flipping `≤`/`≥` under a negative scale) to
/// the tightest right-hand side.  Returns whether anything changed.
fn drop_duplicate_rows(rows: &mut [WorkRow], infeasible: &mut bool) -> bool {
    use std::collections::HashMap;

    // Key: canonicalized cmp + exact bit patterns of the scaled terms.
    type Key = (u8, Vec<(usize, u64)>);
    // Value: index of the representative row and its canonical scale.
    let mut seen: HashMap<Key, (usize, f64)> = HashMap::new();
    let mut changed = false;
    for i in 0..rows.len() {
        if !rows[i].alive {
            continue;
        }
        let lead = rows[i].terms[0].1;
        if lead.abs() <= EPS {
            continue;
        }
        let cmp = match (rows[i].cmp, lead > 0.0) {
            (Cmp::Eq, _) => Cmp::Eq,
            (c, true) => c,
            (Cmp::Le, false) => Cmp::Ge,
            (Cmp::Ge, false) => Cmp::Le,
        };
        let key: Key = (
            match cmp {
                Cmp::Le => 0,
                Cmp::Ge => 1,
                Cmp::Eq => 2,
            },
            rows[i]
                .terms
                .iter()
                .map(|&(c, a)| (c, (a / lead).to_bits()))
                .collect(),
        );
        let rhs = rows[i].rhs / lead;
        match seen.get(&key) {
            None => {
                seen.insert(key, (i, lead));
            }
            Some(&(rep, rep_lead)) => {
                let rep_rhs = rows[rep].rhs / rep_lead;
                match cmp {
                    Cmp::Eq => {
                        if (rhs - rep_rhs).abs() > FEAS_EPS * (1.0 + rep_rhs.abs()) {
                            *infeasible = true;
                            return true;
                        }
                    }
                    // Keep the tighter bound on the representative.
                    Cmp::Le => {
                        if rhs < rep_rhs {
                            rows[rep].rhs = rhs * rep_lead;
                        }
                    }
                    Cmp::Ge => {
                        if rhs > rep_rhs {
                            rows[rep].rhs = rhs * rep_lead;
                        }
                    }
                }
                rows[i].alive = false;
                changed = true;
            }
        }
    }
    changed
}

impl Presolved {
    /// The reduced problem the backend's real session should open on.
    pub(crate) fn reduced(&self) -> &LpProblem {
        &self.reduced
    }

    /// Wraps the inner session (opened on [`reduced`](Self::reduced)) behind
    /// the original id space.
    pub(crate) fn into_session<'a>(self, inner: Box<dyn LpSession + 'a>) -> PresolvedSession<'a> {
        PresolvedSession {
            inner,
            col_fate: self.col_fate,
            free: self.free,
            names: self.names,
            num_rows: self.num_rows,
            infeasible: self.infeasible,
            rows_dropped: self.rows_dropped,
            cols_dropped: self.cols_dropped,
        }
    }
}

/// A backend session over the presolve-reduced problem, exposed through the
/// original problem's id space (see the [module docs](self)).
pub(crate) struct PresolvedSession<'a> {
    inner: Box<dyn LpSession + 'a>,
    col_fate: Vec<ColFate>,
    free: Vec<bool>,
    names: Vec<String>,
    num_rows: usize,
    /// Sticky: rows only ever get added, so a system once proved infeasible
    /// stays infeasible.
    infeasible: bool,
    rows_dropped: usize,
    cols_dropped: usize,
}

impl PresolvedSession<'_> {
    fn presolve_stats(&self) -> SolveStats {
        SolveStats {
            presolve_rows: self.rows_dropped,
            presolve_cols: self.cols_dropped,
            ..SolveStats::default()
        }
    }

    /// Ensures an originally dropped column exists in the inner session
    /// (an incremental row or a test of its objective needs it live).
    fn materialize(&mut self, index: usize) -> usize {
        match self.col_fate[index] {
            ColFate::Kept(r) => r,
            ColFate::Dropped => {
                let id = self.inner.add_var(&self.names[index], self.free[index]);
                self.col_fate[index] = ColFate::Kept(id.index());
                self.cols_dropped -= 1;
                id.index()
            }
            ColFate::Fixed(_) => unreachable!("fixed columns are substituted, not materialized"),
        }
    }
}

impl LpSession for PresolvedSession<'_> {
    fn add_var(&mut self, name: &str, free: bool) -> LpVarId {
        let inner_id = self.inner.add_var(name, free);
        self.col_fate.push(ColFate::Kept(inner_id.index()));
        self.free.push(free);
        self.names.push(name.to_string());
        LpVarId::from_index(self.col_fate.len() - 1)
    }

    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        self.num_rows += 1;
        let mut rhs = rhs;
        let mut mapped: Vec<(LpVarId, f64)> = Vec::with_capacity(terms.len());
        for &(v, a) in terms {
            match self.col_fate[v.index()] {
                ColFate::Fixed(value) => rhs -= a * value,
                ColFate::Kept(_) | ColFate::Dropped => {
                    let r = self.materialize(v.index());
                    mapped.push((LpVarId::from_index(r), a));
                }
            }
        }
        if mapped.is_empty() {
            // Substitution emptied the row: it is a constant check.
            let ok = match cmp {
                Cmp::Le => rhs >= -FEAS_EPS,
                Cmp::Ge => rhs <= FEAS_EPS,
                Cmp::Eq => rhs.abs() <= FEAS_EPS,
            };
            if !ok {
                self.infeasible = true;
            }
            self.rows_dropped += 1;
            return;
        }
        self.inner.add_constraint(&mapped, cmp, rhs);
    }

    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution {
        let n = self.col_fate.len();
        if self.infeasible {
            return LpSolution::new(LpStatus::Infeasible, 0.0, vec![0.0; n])
                .with_stats(self.presolve_stats());
        }
        // Aggregate the objective per variable, then split it across the
        // column fates: kept terms go to the inner solve, fixed terms are
        // constants, and a negative-improving term on a dropped column makes
        // the whole problem unbounded (the column is unconstrained).
        let mut aggregated: std::collections::BTreeMap<usize, f64> = Default::default();
        for &(v, c) in objective {
            *aggregated.entry(v.index()).or_insert(0.0) += c;
        }
        let mut reduced_objective: Vec<(LpVarId, f64)> = Vec::new();
        let mut dropped_unbounded = false;
        for (&v, &c) in &aggregated {
            match self.col_fate[v] {
                ColFate::Kept(r) => reduced_objective.push((LpVarId::from_index(r), c)),
                ColFate::Fixed(_) => {}
                ColFate::Dropped => {
                    if (self.free[v] && c.abs() > EPS) || c < -EPS {
                        dropped_unbounded = true;
                    }
                }
            }
        }
        let inner_solution = self.inner.minimize(&reduced_objective);
        let stats = inner_solution.stats.merge(&self.presolve_stats());
        if inner_solution.status == LpStatus::Infeasible {
            return LpSolution::new(LpStatus::Infeasible, 0.0, vec![0.0; n]).with_stats(stats);
        }
        if dropped_unbounded
            && matches!(
                inner_solution.status,
                LpStatus::Optimal | LpStatus::Unbounded
            )
        {
            // The kept part is feasible and a dropped column improves the
            // objective without bound.
            return LpSolution::new(LpStatus::Unbounded, 0.0, vec![0.0; n]).with_stats(stats);
        }
        // Postsolve: reconstruct the full primal point and re-evaluate the
        // objective over it (fixed columns contribute their constants).
        let values: Vec<f64> = (0..n)
            .map(|v| match self.col_fate[v] {
                ColFate::Kept(r) => inner_solution.value(LpVarId::from_index(r)),
                ColFate::Fixed(value) => value,
                ColFate::Dropped => 0.0,
            })
            .collect();
        let objective_value = objective.iter().map(|&(v, c)| c * values[v.index()]).sum();
        LpSolution::new(inner_solution.status, objective_value, values).with_stats(stats)
    }

    fn num_vars(&self) -> usize {
        self.col_fate.len()
    }

    fn num_constraints(&self) -> usize {
        self.num_rows
    }

    fn warm_resolves_in_place(&self) -> bool {
        self.inner.warm_resolves_in_place()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LpBackend, SimplexBackend, SparseBackend};
    use crate::pricing::SolverTuning;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn singleton_equalities_fix_and_substitute() {
        // x = 2 (singleton), x + y <= 5, minimize -y → y = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 2.0)], Cmp::Eq, 4.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let pre = presolve(&lp);
        assert!(!pre.infeasible);
        assert_eq!(pre.reduced.num_vars(), 1); // only y survives
        assert_eq!(pre.reduced.num_constraints(), 1); // y <= 3
        assert_eq!(pre.cols_dropped, 1);
        assert_eq!(pre.rows_dropped, 1);

        let mut session = SimplexBackend.open(&lp);
        let sol = session.minimize(&[(y, -1.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 3.0);
        assert_close(sol.objective, -3.0);
        assert!(sol.stats.presolve_rows >= 1);
        assert!(sol.stats.presolve_cols >= 1);
    }

    #[test]
    fn chained_substitution_reaches_a_fixpoint() {
        // x = 1; x + y = 3 becomes a singleton fixing y = 2; y + z <= 4
        // becomes z <= 2.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        let z = lp.add_var("z", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        lp.add_constraint(vec![(y, 1.0), (z, 1.0)], Cmp::Le, 4.0);
        let pre = presolve(&lp);
        assert_eq!(pre.reduced.num_vars(), 1);
        assert_eq!(pre.reduced.num_constraints(), 1);
        let sol = SparseBackend.open(&lp).minimize(&[(z, -1.0)]);
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 2.0);
        assert_close(sol.value(z), 2.0);
    }

    #[test]
    fn contradictory_singletons_prove_infeasibility() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Eq, -2.0); // x = -2, x >= 0
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        assert!(presolve(&lp).infeasible);
        let sol = SimplexBackend.open(&lp).minimize(&[(x, 1.0)]);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn duplicate_rows_collapse_to_the_tightest_rhs() {
        // The same row three times (one scaled/flipped); tightest wins.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 9.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(x, -2.0), (y, -2.0)], Cmp::Ge, -16.0); // x + y <= 8
        let pre = presolve(&lp);
        assert_eq!(pre.reduced.num_constraints(), 1);
        assert_eq!(pre.rows_dropped, 2);
        let sol = SimplexBackend.open(&lp).minimize(&[(x, -1.0)]);
        assert_close(sol.objective, -4.0);
    }

    #[test]
    fn dropped_columns_resolve_against_the_objective() {
        // y appears in no row: minimizing +y keeps it at 0, minimizing -y is
        // unbounded, and a free unconstrained z is unbounded in any direction.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        let z = lp.add_var("z", true);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let mut session = SparseBackend.open(&lp);
        let down = session.minimize(&[(x, -1.0), (y, 1.0)]);
        assert_eq!(down.status, LpStatus::Optimal);
        assert_close(down.value(x), 5.0);
        assert_close(down.value(y), 0.0);
        assert_eq!(session.minimize(&[(y, -1.0)]).status, LpStatus::Unbounded);
        assert_eq!(session.minimize(&[(z, 1.0)]).status, LpStatus::Unbounded);
    }

    #[test]
    fn incremental_rows_substitute_and_rematerialize() {
        // x fixed by presolve; y dropped (no rows).  A later row mentioning
        // both substitutes x and re-materializes y.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Eq, 2.0);
        let mut session = SparseBackend.open(&lp);
        assert!(session.minimize(&[(y, 1.0)]).is_optimal());
        session.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 6.0); // y >= 4
        let sol = session.minimize(&[(y, 1.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 4.0);
        assert_eq!(session.num_vars(), 2);
        assert_eq!(session.num_constraints(), 2);

        // A constant row that contradicts the fixed value flips the session
        // to (sticky) infeasible.
        session.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(session.minimize(&[(y, 1.0)]).status, LpStatus::Infeasible);
        assert_eq!(session.minimize(&[(y, 1.0)]).status, LpStatus::Infeasible);
        assert_eq!(session.num_constraints(), 3);
    }

    #[test]
    fn presolve_can_be_disabled_per_tuning() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Eq, 2.0);
        lp.set_objective(vec![(x, 1.0)]);
        let tuning = SolverTuning {
            presolve: false,
            ..SolverTuning::default()
        };
        for backend in [&SimplexBackend as &dyn LpBackend, &SparseBackend] {
            let sol = backend.open_with(&lp, &tuning).minimize(lp.objective());
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.value(x), 2.0);
            assert_eq!(sol.stats.presolve_rows, 0);
            assert_eq!(sol.stats.presolve_cols, 0);
        }
    }
}
