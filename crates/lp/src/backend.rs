//! The solver abstraction: [`LpBackend`] and [`LpSession`].
//!
//! The derivation system reduces bound inference to linear programming but
//! does not care *how* the program is solved — the paper's artifact used
//! Gurobi, this reproduction ships two configurations of one shared simplex
//! core, and a production deployment might shell out to a parallel
//! interior-point solver.  The [`LpBackend`] trait is that seam: everything
//! above `cma-lp` (the constraint builder, the analysis engine, the
//! `Analysis` pipeline facade) takes a backend value instead of hard-wiring a
//! solver.
//!
//! # The session model
//!
//! Template-based analyses solve many structurally similar programs: the
//! engine minimizes different objectives over one constraint system, and the
//! soundness phase layers side-condition rows on top of the system the main
//! pass already built.  A one-shot `solve(&LpProblem)` call makes that reuse
//! impossible, so the seam is a **session**: [`LpBackend::open`] loads a
//! problem's constraint set into an [`LpSession`], which then supports
//!
//! * [`minimize`](LpSession::minimize) — repeatedly, with different
//!   objectives, over the same constraint set (stateful backends keep their
//!   factorization/basis warm between calls);
//! * [`add_var`](LpSession::add_var) / [`add_constraint`](LpSession::add_constraint)
//!   — incremental column and row addition, extending the system in place;
//! * the one-shot [`solve`](LpBackend::solve) and the batch entry point
//!   [`solve_batch`](LpBackend::solve_batch) are provided methods layered on
//!   top of `open`.
//!
//! Every entry point has a `_with` twin taking [`SolverTuning`] (pricing
//! rule, presolve, basis factorization, warm-resolve strategy) — the
//! built-in backends honor it; [`TunedBackend`] pins a tuning onto a backend
//! value for callers generic over [`LpBackend`].
//!
//! Variable ids are shared between a session and the [`LpProblem`] it was
//! opened on: ids created through [`LpSession::add_var`] continue the same id
//! space, so callers can keep building one model and flush increments into
//! the session.
//!
//! # Contract
//!
//! An implementation must, for every well-formed [`LpProblem`] and for every
//! state a session can reach through `add_var`/`add_constraint`:
//!
//! 1. return [`LpStatus::Optimal`](crate::LpStatus::Optimal) together with a feasible point attaining
//!    the minimum whenever the problem is feasible and bounded (within the
//!    backend's numeric tolerance);
//! 2. return [`LpStatus::Infeasible`](crate::LpStatus::Infeasible) when no feasible point exists;
//! 3. return [`LpStatus::Unbounded`](crate::LpStatus::Unbounded) when the objective is unbounded below on
//!    a non-empty feasible region;
//! 4. respect variable domains: non-negative variables must be ≥ 0 in any
//!    reported solution, free variables may take any sign;
//! 5. be deterministic: solving the same problem twice — including
//!    re-minimizing the same objective in one session — yields the same
//!    status and (for `Optimal`) the same objective value;
//! 6. never panic on solvable input — resource exhaustion (a
//!    [`SolveBudget`](crate::SolveBudget) limb running out, or the solver's
//!    built-in runaway backstop) is reported as
//!    [`LpStatus::BudgetExhausted`](crate::LpStatus::BudgetExhausted), which
//!    is a statement about resources only: callers must never interpret it
//!    as infeasibility, and a budgeted session must never report
//!    `Infeasible`/`Unbounded`/`Optimal` where the unbudgeted solve would
//!    not — running out of budget truncates the search, it never flips a
//!    verdict;
//! 7. honor [`SolverTuning::budget`](crate::SolverTuning::budget) across the
//!    *whole session lifetime*: the spend carries over from one `minimize`
//!    to the next (warm re-solves and in-session extensions included), so a
//!    session's total cost is bounded by one budget no matter how many times
//!    it is re-entered.
//!
//! The conformance suite in `tests/backend_conformance.rs` checks these
//! obligations (including the session-specific ones) and should be run
//! against every new backend.
//!
//! # Implementing a backend
//!
//! New backends implement [`LpBackend::open`] (the one required method
//! besides [`name`](LpBackend::name)) and inherit `solve` / `solve_batch`.
//! The PR 1-era escape hatch — a default `open` that wrapped `solve`-only
//! backends in a re-solving session — is gone: it silently re-solved from
//! scratch on every `minimize`, so stateful reuse and incremental rows
//! gained nothing, and its last in-tree caller has been ported.  A backend
//! whose underlying solver really is one-shot can still implement `open` as
//! a few lines that keep the growable problem and re-solve per `minimize`.
//!
//! Backends must be [`Sync`]: [`solve_batch`](LpBackend::solve_batch) shares
//! one backend value across worker threads to solve independent problems
//! (e.g. the engine's compositional SCC groups) concurrently.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::core::SimplexCore;
use crate::presolve::presolve;
use crate::pricing::SolverTuning;
use crate::simplex::{Cmp, LpProblem, LpSolution, LpVarId};

/// An open solver session over one (growable) constraint system.
///
/// Obtained from [`LpBackend::open`]; see the [module docs](self) for the
/// behavioral contract and the shared-id-space invariant.
pub trait LpSession {
    /// Adds a variable (non-negative unless `free`), continuing the id space
    /// of the problem the session was opened on.
    fn add_var(&mut self, name: &str, free: bool) -> LpVarId;

    /// Appends the constraint row `Σ coeff·var  cmp  rhs` to the system.
    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64);

    /// Solves `minimize Σ coeff·var` over the current constraint system.
    ///
    /// May be called repeatedly; the constraint set persists across calls.
    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution;

    /// Number of variables currently in the session.
    fn num_vars(&self) -> usize;

    /// Number of constraint rows currently in the session.
    fn num_constraints(&self) -> usize;

    /// Whether this session repairs incrementally added rows *in place*
    /// (e.g. by dual-simplex pivots from the warm basis) rather than
    /// re-solving from scratch.  Callers with a choice — like the engine's
    /// soundness extension, which can alternatively solve a disjoint
    /// subsystem standalone — use this to decide whether flushing more rows
    /// into the live session is the cheap path.  Default: `false`.
    fn warm_resolves_in_place(&self) -> bool {
        false
    }
}

/// A linear-programming solver usable by the analysis.
///
/// See the [module documentation](self) for the behavioral contract.
pub trait LpBackend: Sync {
    /// A short human-readable solver name (reported in `AnalysisReport`).
    fn name(&self) -> &str;

    /// Opens a session over the problem's constraint set (the problem's own
    /// objective, if any, is ignored — objectives are passed to
    /// [`LpSession::minimize`]).
    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a>;

    /// Opens a session under explicit [`SolverTuning`] (pricing rule,
    /// presolve, factorization, warm-resolve strategy).  The default
    /// ignores the tuning and defers to [`open`](Self::open), so
    /// third-party backends keep compiling; the built-in backends honor it.
    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        let _ = tuning;
        self.open(problem)
    }

    /// Solves `minimize c·x subject to constraints` for the given problem in
    /// one shot (provided via [`open`](Self::open) + one `minimize`).
    fn solve(&self, problem: &LpProblem) -> LpSolution {
        self.open(problem).minimize(problem.objective())
    }

    /// One-shot solve under explicit tuning (via
    /// [`open_with`](Self::open_with) + one `minimize`).
    fn solve_with(&self, problem: &LpProblem, tuning: &SolverTuning) -> LpSolution {
        self.open_with(problem, tuning)
            .minimize(problem.objective())
    }

    /// Solves independent problems concurrently on up to `threads` worker
    /// threads, returning one solution per problem in order.
    ///
    /// The default fans the one-shot [`solve`](Self::solve) out over a scoped
    /// thread pool; `threads <= 1` (or a single problem) degrades to the
    /// sequential path.
    fn solve_batch(&self, problems: &[LpProblem], threads: usize) -> Vec<LpSolution> {
        self.solve_batch_with(problems, threads, &SolverTuning::default())
    }

    /// [`solve_batch`](Self::solve_batch) under explicit tuning.
    fn solve_batch_with(
        &self,
        problems: &[LpProblem],
        threads: usize,
        tuning: &SolverTuning,
    ) -> Vec<LpSolution> {
        if threads <= 1 || problems.len() <= 1 {
            return problems
                .iter()
                .map(|p| self.solve_with(p, tuning))
                .collect();
        }
        let workers = threads.min(problems.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<LpSolution>>> =
            problems.iter().map(|_| Mutex::new(None)).collect();
        rayon::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= problems.len() {
                        break;
                    }
                    let solution = self.solve_with(&problems[i], tuning);
                    *slots[i].lock().expect("batch slot poisoned") = Some(solution);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

/// Applies presolve (when enabled) around an inner-session constructor.
fn open_maybe_presolved<'a>(
    problem: &LpProblem,
    tuning: &SolverTuning,
    open_inner: impl FnOnce(&LpProblem) -> Box<dyn LpSession + 'a>,
) -> Box<dyn LpSession + 'a> {
    if tuning.presolve {
        let pre = presolve(problem);
        let inner = open_inner(pre.reduced());
        Box::new(pre.into_session(inner))
    } else {
        open_inner(problem)
    }
}

/// The dense backend's session: keeps the (growable) problem and runs the
/// shared simplex core — dense column storage, tuned factorization — from
/// scratch on every `minimize`.  Deliberately stateless between solves:
/// that is what makes it the trustworthy reference the stateful
/// [`SparseBackend`] is pinned against.
struct ReSolveSession {
    problem: LpProblem,
    tuning: SolverTuning,
    /// Iterations already charged against the session budget by earlier
    /// re-solves.  The dense session opens a fresh core per `minimize`, so
    /// the cross-minimize budget carry-over the contract requires (item 7)
    /// is accounted here: each solve runs under the budget *remainder*.
    spent_iters: usize,
    /// Refactorizations already charged against the session budget.
    spent_refactorizations: usize,
}

impl ReSolveSession {
    fn new(problem: LpProblem, tuning: SolverTuning) -> Self {
        ReSolveSession {
            problem,
            tuning,
            spent_iters: 0,
            spent_refactorizations: 0,
        }
    }
}

impl LpSession for ReSolveSession {
    fn add_var(&mut self, name: &str, free: bool) -> LpVarId {
        self.problem.add_var(name, free)
    }

    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        self.problem.add_constraint(terms.to_vec(), cmp, rhs);
    }

    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution {
        self.problem.set_objective(objective.to_vec());
        let mut tuning = self.tuning;
        tuning.budget.max_iters = tuning
            .budget
            .max_iters
            .map(|cap| cap.saturating_sub(self.spent_iters));
        tuning.budget.max_refactorizations = tuning
            .budget
            .max_refactorizations
            .map(|cap| cap.saturating_sub(self.spent_refactorizations));
        let solution = self.problem.solve_dense_with(&tuning);
        self.spent_iters += solution.stats.iterations;
        self.spent_refactorizations += solution.stats.refactorizations;
        solution
    }

    fn num_vars(&self) -> usize {
        self.problem.num_vars()
    }

    fn num_constraints(&self) -> usize {
        self.problem.num_constraints()
    }
}

/// The built-in dense two-phase primal simplex (the reference backend).
///
/// A thin configuration of the shared `SimplexCore`: dense column storage,
/// sessions that re-solve from scratch on every `minimize` — simple and
/// trustworthy, which is exactly what the reference implementation should
/// be.  The stateful, warm-started alternative is
/// [`SparseBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexBackend;

impl LpBackend for SimplexBackend {
    fn name(&self) -> &str {
        "dense-simplex"
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        self.open_with(problem, &SolverTuning::default())
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        let tuning = *tuning;
        open_maybe_presolved(problem, &tuning, |reduced| {
            Box::new(ReSolveSession::new(reduced.clone(), tuning))
        })
    }
}

/// The sparse revised simplex over the CSR constraint matrix.
///
/// The shared `SimplexCore` with sparse column storage and live session
/// state: re-minimizing with a new objective restarts phase 2 from the
/// previous optimal basis, incrementally added rows extend the basis instead
/// of rebuilding it, and — under the default dual warm-resolve strategy — a
/// cutting row is repaired by a handful of dual-simplex pivots rather than a
/// phase-1 restart (see `crates/lp/src/core.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseBackend;

impl LpBackend for SparseBackend {
    fn name(&self) -> &str {
        "sparse-revised-simplex"
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        self.open_with(problem, &SolverTuning::default())
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        open_maybe_presolved(problem, tuning, |reduced| {
            Box::new(SimplexCore::open_with(reduced, tuning, false))
        })
    }
}

/// A backend bound to explicit [`SolverTuning`]: every session it opens —
/// through `open`, `open_with`, `solve`, or a batch — uses *its* tuning,
/// regardless of what the caller passes.  This is how a caller-side pricing
/// or factorization choice (e.g. `cma --factor lu`) rides through code
/// generic over [`LpBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunedBackend<B> {
    backend: B,
    tuning: SolverTuning,
}

impl<B: LpBackend> TunedBackend<B> {
    /// Binds `backend` to `tuning`.
    pub fn new(backend: B, tuning: SolverTuning) -> Self {
        TunedBackend { backend, tuning }
    }

    /// The bound tuning.
    pub fn tuning(&self) -> SolverTuning {
        self.tuning
    }
}

impl<B: LpBackend> LpBackend for TunedBackend<B> {
    fn name(&self) -> &str {
        self.backend.name()
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        self.backend.open_with(problem, &self.tuning)
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        _tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        self.backend.open_with(problem, &self.tuning)
    }

    fn solve(&self, problem: &LpProblem) -> LpSolution {
        self.backend.solve_with(problem, &self.tuning)
    }

    fn solve_with(&self, problem: &LpProblem, _tuning: &SolverTuning) -> LpSolution {
        self.backend.solve_with(problem, &self.tuning)
    }

    fn solve_batch(&self, problems: &[LpProblem], threads: usize) -> Vec<LpSolution> {
        self.backend
            .solve_batch_with(problems, threads, &self.tuning)
    }

    fn solve_batch_with(
        &self,
        problems: &[LpProblem],
        threads: usize,
        _tuning: &SolverTuning,
    ) -> Vec<LpSolution> {
        self.backend
            .solve_batch_with(problems, threads, &self.tuning)
    }
}

/// Blanket impl so `&B` and `&dyn LpBackend` are themselves backends — lets
/// callers thread borrowed backends through generic code.  Every method
/// forwards, so a borrowed stateful backend keeps its stateful sessions.
impl<B: LpBackend + ?Sized> LpBackend for &B {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        (**self).open(problem)
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        (**self).open_with(problem, tuning)
    }

    fn solve(&self, problem: &LpProblem) -> LpSolution {
        (**self).solve(problem)
    }

    fn solve_with(&self, problem: &LpProblem, tuning: &SolverTuning) -> LpSolution {
        (**self).solve_with(problem, tuning)
    }

    fn solve_batch(&self, problems: &[LpProblem], threads: usize) -> Vec<LpSolution> {
        (**self).solve_batch(problems, threads)
    }

    fn solve_batch_with(
        &self,
        problems: &[LpProblem],
        threads: usize,
        tuning: &SolverTuning,
    ) -> Vec<LpSolution> {
        (**self).solve_batch_with(problems, threads, tuning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LpStatus;

    fn toy_problem() -> LpProblem {
        // minimize -x - 2y  s.t.  x + y <= 4, y <= 3; optimum -7 at (1, 3).
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
        lp
    }

    #[test]
    fn simplex_backend_matches_direct_solve() {
        let lp = toy_problem();
        let direct = lp.solve();
        let via_backend = SimplexBackend.solve(&lp);
        assert_eq!(via_backend.status, LpStatus::Optimal);
        assert!((via_backend.objective - direct.objective).abs() < 1e-9);
    }

    #[test]
    fn backends_work_behind_references_and_dyn() {
        let lp = toy_problem();
        let backend = SimplexBackend;
        let by_ref: &SimplexBackend = &backend;
        assert_eq!(by_ref.name(), "dense-simplex");
        assert!(by_ref.solve(&lp).is_optimal());
        let dynamic: &dyn LpBackend = &backend;
        assert!(dynamic.solve(&lp).is_optimal());
        assert_eq!(dynamic.name(), "dense-simplex");
        assert!(dynamic.open(&lp).minimize(lp.objective()).is_optimal());
    }

    /// A third-party backend that implements only the required `open`
    /// (as a re-solving session) must inherit working `solve` and
    /// `solve_batch` defaults.
    struct MinimalBackend;

    impl LpBackend for MinimalBackend {
        fn name(&self) -> &str {
            "minimal"
        }

        fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
            Box::new(ReSolveSession::new(
                problem.clone(),
                SolverTuning::default(),
            ))
        }
    }

    #[test]
    fn open_only_backends_inherit_solve_and_sessions() {
        let lp = toy_problem();
        assert!((MinimalBackend.solve(&lp).objective - (-7.0)).abs() < 1e-7);
        let mut session = MinimalBackend.open(&lp);
        let first = session.minimize(lp.objective());
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - (-7.0)).abs() < 1e-7);
        // Incremental row through the re-solving session: y <= 1 moves the
        // optimum to (3, 1) with objective -5.
        let y = LpVarId::from_index(1);
        session.add_constraint(&[(y, 1.0)], Cmp::Le, 1.0);
        let second = session.minimize(lp.objective());
        assert!((second.objective - (-5.0)).abs() < 1e-7);
        assert_eq!(session.num_constraints(), 3);
        assert_eq!(session.num_vars(), 2);
    }

    #[test]
    fn solve_batch_matches_sequential_solves() {
        let problems: Vec<LpProblem> = (0..7)
            .map(|i| {
                let mut lp = LpProblem::new();
                let x = lp.add_var("x", false);
                lp.add_constraint(vec![(x, 1.0)], Cmp::Le, i as f64);
                lp.set_objective(vec![(x, -1.0)]);
                lp
            })
            .collect();
        let sequential = SimplexBackend.solve_batch(&problems, 1);
        let parallel = SimplexBackend.solve_batch(&problems, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.status, p.status);
            assert_eq!(s.objective, p.objective);
        }
        assert!((parallel[5].objective - (-5.0)).abs() < 1e-9);
    }
}
