//! The solver abstraction: [`LpBackend`] and [`LpSession`].
//!
//! The derivation system reduces bound inference to linear programming but
//! does not care *how* the program is solved — the paper's artifact used
//! Gurobi, this reproduction ships a dense simplex and a sparse revised
//! simplex, and a production deployment might shell out to a parallel
//! interior-point solver.  The [`LpBackend`] trait is that seam: everything
//! above `cma-lp` (the constraint builder, the analysis engine, the
//! `Analysis` pipeline facade) takes a backend value instead of hard-wiring a
//! solver.
//!
//! # The session model
//!
//! Template-based analyses solve many structurally similar programs: the
//! engine minimizes different objectives over one constraint system, and the
//! soundness phase layers side-condition rows on top of the system the main
//! pass already built.  A one-shot `solve(&LpProblem)` call makes that reuse
//! impossible, so the seam is a **session**: [`LpBackend::open`] loads a
//! problem's constraint set into an [`LpSession`], which then supports
//!
//! * [`minimize`](LpSession::minimize) — repeatedly, with different
//!   objectives, over the same constraint set (stateful backends keep their
//!   factorization/basis warm between calls);
//! * [`add_var`](LpSession::add_var) / [`add_constraint`](LpSession::add_constraint)
//!   — incremental column and row addition, extending the system in place;
//! * the one-shot [`solve`](LpBackend::solve) and the batch entry point
//!   [`solve_batch`](LpBackend::solve_batch) are provided methods layered on
//!   top of `open`.
//!
//! Every entry point has a `_with` twin taking [`SolverTuning`] (pricing
//! rule, presolve) — the built-in backends honor it, running the presolve
//! pass at open and pricing with the requested rule; [`TunedBackend`] pins a
//! tuning onto a backend value for callers generic over [`LpBackend`].
//!
//! Variable ids are shared between a session and the [`LpProblem`] it was
//! opened on: ids created through [`LpSession::add_var`] continue the same id
//! space, so callers can keep building one model and flush increments into
//! the session.
//!
//! # Contract
//!
//! An implementation must, for every well-formed [`LpProblem`] and for every
//! state a session can reach through `add_var`/`add_constraint`:
//!
//! 1. return [`LpStatus::Optimal`] together with a feasible point attaining
//!    the minimum whenever the problem is feasible and bounded (within the
//!    backend's numeric tolerance);
//! 2. return [`LpStatus::Infeasible`] when no feasible point exists;
//! 3. return [`LpStatus::Unbounded`] when the objective is unbounded below on
//!    a non-empty feasible region;
//! 4. respect variable domains: non-negative variables must be ≥ 0 in any
//!    reported solution, free variables may take any sign;
//! 5. be deterministic: solving the same problem twice — including
//!    re-minimizing the same objective in one session — yields the same
//!    status and (for `Optimal`) the same objective value;
//! 6. never panic on solvable input — resource exhaustion is reported as
//!    [`LpStatus::IterationLimit`].
//!
//! The conformance suite in `tests/backend_conformance.rs` checks these
//! obligations (including the session-specific ones) and should be run
//! against every new backend.
//!
//! # Implementing a backend
//!
//! New backends implement [`LpBackend::open`] and inherit `solve` /
//! `solve_batch`.  Backends written against the PR 1 one-shot contract that
//! only override [`solve`](LpBackend::solve) keep compiling: the default
//! `open` wraps such a backend in a re-solving session.  That path is
//! **soft-deprecated** — it re-solves from scratch on every `minimize`, so
//! stateful reuse and incremental rows gain nothing; port to `open` to
//! benefit.  Implement at least one of `open`/`solve`, or every call recurses
//! between the two defaults.
//!
//! Backends must be [`Sync`]: [`solve_batch`](LpBackend::solve_batch) shares
//! one backend value across worker threads to solve independent problems
//! (e.g. the engine's compositional SCC groups) concurrently.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::presolve::presolve;
use crate::pricing::SolverTuning;
use crate::revised::RevisedState;
use crate::simplex::{Cmp, LpProblem, LpSolution, LpVarId};

/// An open solver session over one (growable) constraint system.
///
/// Obtained from [`LpBackend::open`]; see the [module docs](self) for the
/// behavioral contract and the shared-id-space invariant.
pub trait LpSession {
    /// Adds a variable (non-negative unless `free`), continuing the id space
    /// of the problem the session was opened on.
    fn add_var(&mut self, name: &str, free: bool) -> LpVarId;

    /// Appends the constraint row `Σ coeff·var  cmp  rhs` to the system.
    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64);

    /// Solves `minimize Σ coeff·var` over the current constraint system.
    ///
    /// May be called repeatedly; the constraint set persists across calls.
    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution;

    /// Number of variables currently in the session.
    fn num_vars(&self) -> usize;

    /// Number of constraint rows currently in the session.
    fn num_constraints(&self) -> usize;
}

/// A linear-programming solver usable by the analysis.
///
/// See the [module documentation](self) for the behavioral contract.
pub trait LpBackend: Sync {
    /// A short human-readable solver name (reported in `AnalysisReport`).
    fn name(&self) -> &str;

    /// Opens a session over the problem's constraint set (the problem's own
    /// objective, if any, is ignored — objectives are passed to
    /// [`LpSession::minimize`]).
    ///
    /// The default wraps [`solve`](Self::solve)-only backends in a session
    /// that re-solves from scratch on every call; stateful backends should
    /// override it.
    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        Box::new(ResolveSession {
            problem: problem.clone(),
            solve: Box::new(move |p| self.solve(p)),
        })
    }

    /// Opens a session under explicit [`SolverTuning`] (pricing rule,
    /// presolve).  The default ignores the tuning and defers to
    /// [`open`](Self::open), so third-party backends keep compiling; the
    /// built-in backends honor it.
    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        let _ = tuning;
        self.open(problem)
    }

    /// Solves `minimize c·x subject to constraints` for the given problem in
    /// one shot (provided via [`open`](Self::open) + one `minimize`).
    fn solve(&self, problem: &LpProblem) -> LpSolution {
        self.open(problem).minimize(problem.objective())
    }

    /// One-shot solve under explicit tuning (via
    /// [`open_with`](Self::open_with) + one `minimize`).
    fn solve_with(&self, problem: &LpProblem, tuning: &SolverTuning) -> LpSolution {
        self.open_with(problem, tuning)
            .minimize(problem.objective())
    }

    /// Solves independent problems concurrently on up to `threads` worker
    /// threads, returning one solution per problem in order.
    ///
    /// The default fans the one-shot [`solve`](Self::solve) out over a scoped
    /// thread pool; `threads <= 1` (or a single problem) degrades to the
    /// sequential path.
    fn solve_batch(&self, problems: &[LpProblem], threads: usize) -> Vec<LpSolution> {
        self.solve_batch_with(problems, threads, &SolverTuning::default())
    }

    /// [`solve_batch`](Self::solve_batch) under explicit tuning.
    fn solve_batch_with(
        &self,
        problems: &[LpProblem],
        threads: usize,
        tuning: &SolverTuning,
    ) -> Vec<LpSolution> {
        if threads <= 1 || problems.len() <= 1 {
            return problems
                .iter()
                .map(|p| self.solve_with(p, tuning))
                .collect();
        }
        let workers = threads.min(problems.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<LpSolution>>> =
            problems.iter().map(|_| Mutex::new(None)).collect();
        rayon::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= problems.len() {
                        break;
                    }
                    let solution = self.solve_with(&problems[i], tuning);
                    *slots[i].lock().expect("batch slot poisoned") = Some(solution);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

/// Applies presolve (when enabled) around an inner-session constructor.
fn open_maybe_presolved<'a>(
    problem: &LpProblem,
    tuning: &SolverTuning,
    open_inner: impl FnOnce(&LpProblem) -> Box<dyn LpSession + 'a>,
) -> Box<dyn LpSession + 'a> {
    if tuning.presolve {
        let pre = presolve(problem);
        let inner = open_inner(pre.reduced());
        Box::new(pre.into_session(inner))
    } else {
        open_inner(problem)
    }
}

/// The fallback session used by the default [`LpBackend::open`]: keeps the
/// (growable) problem and re-solves it from scratch on every `minimize`.
/// Correct for any conforming one-shot backend, but gains nothing from reuse.
struct ResolveSession<'a> {
    problem: LpProblem,
    solve: Box<dyn Fn(&LpProblem) -> LpSolution + 'a>,
}

impl LpSession for ResolveSession<'_> {
    fn add_var(&mut self, name: &str, free: bool) -> LpVarId {
        self.problem.add_var(name, free)
    }

    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        self.problem.add_constraint(terms.to_vec(), cmp, rhs);
    }

    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution {
        self.problem.set_objective(objective.to_vec());
        (self.solve)(&self.problem)
    }

    fn num_vars(&self) -> usize {
        self.problem.num_vars()
    }

    fn num_constraints(&self) -> usize {
        self.problem.num_constraints()
    }
}

/// The built-in dense two-phase primal simplex (the reference backend).
///
/// Its sessions re-solve the full tableau on every `minimize` — simple and
/// trustworthy, which is exactly what the reference implementation should be.
/// The stateful, warm-started alternative is [`SparseBackend`](crate::SparseBackend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexBackend;

impl LpBackend for SimplexBackend {
    fn name(&self) -> &str {
        "dense-simplex"
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        self.open_with(problem, &SolverTuning::default())
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        let pricing = tuning.pricing;
        open_maybe_presolved(problem, tuning, |reduced| {
            Box::new(ResolveSession {
                problem: reduced.clone(),
                solve: Box::new(move |p| p.solve_with(pricing)),
            })
        })
    }
}

/// The sparse revised simplex over the CSR constraint matrix.
///
/// Sessions keep the basis factorization warm: re-minimizing with a new
/// objective restarts phase 2 from the previous optimal basis, and
/// incrementally added rows extend the basis instead of rebuilding it (see
/// `crates/lp/src/revised.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseBackend;

impl LpBackend for SparseBackend {
    fn name(&self) -> &str {
        "sparse-revised-simplex"
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        self.open_with(problem, &SolverTuning::default())
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        let pricing = tuning.pricing;
        open_maybe_presolved(problem, tuning, |reduced| {
            Box::new(RevisedState::open_with(reduced, pricing))
        })
    }
}

/// A backend bound to explicit [`SolverTuning`]: every session it opens —
/// through `open`, `open_with`, `solve`, or a batch — uses *its* tuning,
/// regardless of what the caller passes.  This is how a caller-side pricing
/// choice (e.g. `cma --pricing devex`) rides through code generic over
/// [`LpBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunedBackend<B> {
    backend: B,
    tuning: SolverTuning,
}

impl<B: LpBackend> TunedBackend<B> {
    /// Binds `backend` to `tuning`.
    pub fn new(backend: B, tuning: SolverTuning) -> Self {
        TunedBackend { backend, tuning }
    }

    /// The bound tuning.
    pub fn tuning(&self) -> SolverTuning {
        self.tuning
    }
}

impl<B: LpBackend> LpBackend for TunedBackend<B> {
    fn name(&self) -> &str {
        self.backend.name()
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        self.backend.open_with(problem, &self.tuning)
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        _tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        self.backend.open_with(problem, &self.tuning)
    }

    fn solve(&self, problem: &LpProblem) -> LpSolution {
        self.backend.solve_with(problem, &self.tuning)
    }

    fn solve_with(&self, problem: &LpProblem, _tuning: &SolverTuning) -> LpSolution {
        self.backend.solve_with(problem, &self.tuning)
    }

    fn solve_batch(&self, problems: &[LpProblem], threads: usize) -> Vec<LpSolution> {
        self.backend
            .solve_batch_with(problems, threads, &self.tuning)
    }

    fn solve_batch_with(
        &self,
        problems: &[LpProblem],
        threads: usize,
        _tuning: &SolverTuning,
    ) -> Vec<LpSolution> {
        self.backend
            .solve_batch_with(problems, threads, &self.tuning)
    }
}

/// Blanket impl so `&B` and `&dyn LpBackend` are themselves backends — lets
/// callers thread borrowed backends through generic code.  Every method
/// forwards, so a borrowed stateful backend keeps its stateful sessions.
impl<B: LpBackend + ?Sized> LpBackend for &B {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn LpSession + 'a> {
        (**self).open(problem)
    }

    fn open_with<'a>(
        &'a self,
        problem: &LpProblem,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        (**self).open_with(problem, tuning)
    }

    fn solve(&self, problem: &LpProblem) -> LpSolution {
        (**self).solve(problem)
    }

    fn solve_with(&self, problem: &LpProblem, tuning: &SolverTuning) -> LpSolution {
        (**self).solve_with(problem, tuning)
    }

    fn solve_batch(&self, problems: &[LpProblem], threads: usize) -> Vec<LpSolution> {
        (**self).solve_batch(problems, threads)
    }

    fn solve_batch_with(
        &self,
        problems: &[LpProblem],
        threads: usize,
        tuning: &SolverTuning,
    ) -> Vec<LpSolution> {
        (**self).solve_batch_with(problems, threads, tuning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LpStatus;

    fn toy_problem() -> LpProblem {
        // minimize -x - 2y  s.t.  x + y <= 4, y <= 3; optimum -7 at (1, 3).
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
        lp
    }

    #[test]
    fn simplex_backend_matches_direct_solve() {
        let lp = toy_problem();
        let direct = lp.solve();
        let via_backend = SimplexBackend.solve(&lp);
        assert_eq!(via_backend.status, LpStatus::Optimal);
        assert!((via_backend.objective - direct.objective).abs() < 1e-9);
    }

    #[test]
    fn backends_work_behind_references_and_dyn() {
        let lp = toy_problem();
        let backend = SimplexBackend;
        let by_ref: &SimplexBackend = &backend;
        assert_eq!(by_ref.name(), "dense-simplex");
        assert!(by_ref.solve(&lp).is_optimal());
        let dynamic: &dyn LpBackend = &backend;
        assert!(dynamic.solve(&lp).is_optimal());
        assert_eq!(dynamic.name(), "dense-simplex");
        assert!(dynamic.open(&lp).minimize(lp.objective()).is_optimal());
    }

    /// A PR 1-era backend: overrides only `solve`.  The default `open` must
    /// wrap it in a conforming (re-solving) session.
    struct LegacyBackend;

    impl LpBackend for LegacyBackend {
        fn name(&self) -> &str {
            "legacy"
        }

        fn solve(&self, problem: &LpProblem) -> LpSolution {
            problem.solve()
        }
    }

    #[test]
    fn solve_only_backends_get_sessions_through_the_default_open() {
        let lp = toy_problem();
        let mut session = LegacyBackend.open(&lp);
        let first = session.minimize(lp.objective());
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - (-7.0)).abs() < 1e-7);
        // Incremental row through the fallback session: y <= 1 moves the
        // optimum to (3, 1) with objective -5.
        let y = LpVarId::from_index(1);
        session.add_constraint(&[(y, 1.0)], Cmp::Le, 1.0);
        let second = session.minimize(lp.objective());
        assert!((second.objective - (-5.0)).abs() < 1e-7);
        assert_eq!(session.num_constraints(), 3);
        assert_eq!(session.num_vars(), 2);
    }

    #[test]
    fn solve_batch_matches_sequential_solves() {
        let problems: Vec<LpProblem> = (0..7)
            .map(|i| {
                let mut lp = LpProblem::new();
                let x = lp.add_var("x", false);
                lp.add_constraint(vec![(x, 1.0)], Cmp::Le, i as f64);
                lp.set_objective(vec![(x, -1.0)]);
                lp
            })
            .collect();
        let sequential = SimplexBackend.solve_batch(&problems, 1);
        let parallel = SimplexBackend.solve_batch(&problems, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.status, p.status);
            assert_eq!(s.objective, p.objective);
        }
        assert!((parallel[5].objective - (-5.0)).abs() < 1e-9);
    }
}
