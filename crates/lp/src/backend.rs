//! The solver abstraction: [`LpBackend`].
//!
//! The derivation system reduces bound inference to linear programming but
//! does not care *how* the program is solved — the paper's artifact used
//! Gurobi, this reproduction ships a dense simplex, and a production
//! deployment might shell out to a parallel interior-point solver.  The
//! [`LpBackend`] trait is that seam: everything above `cma-lp` (the constraint
//! builder, the analysis engine, the `Analysis` pipeline facade) takes a
//! backend value instead of hard-wiring a solver.
//!
//! # Contract
//!
//! An implementation must, for every well-formed [`LpProblem`]:
//!
//! 1. return [`LpStatus::Optimal`] together with a feasible point attaining
//!    the minimum whenever the problem is feasible and bounded (within the
//!    backend's numeric tolerance);
//! 2. return [`LpStatus::Infeasible`] when no feasible point exists;
//! 3. return [`LpStatus::Unbounded`] when the objective is unbounded below on
//!    a non-empty feasible region;
//! 4. respect variable domains: non-negative variables must be ≥ 0 in any
//!    reported solution, free variables may take any sign;
//! 5. be deterministic: solving the same problem twice yields the same status
//!    and (for `Optimal`) the same objective value;
//! 6. never panic on solvable input — resource exhaustion is reported as
//!    [`LpStatus::IterationLimit`].
//!
//! The conformance suite in `tests/backend_conformance.rs` checks these
//! obligations and should be run against every new backend.

use crate::simplex::{LpProblem, LpSolution};

/// A linear-programming solver usable by the analysis.
///
/// See the [module documentation](self) for the behavioral contract.
pub trait LpBackend {
    /// A short human-readable solver name (reported in `AnalysisReport`).
    fn name(&self) -> &str;

    /// Solves `minimize c·x subject to constraints` for the given problem.
    fn solve(&self, problem: &LpProblem) -> LpSolution;
}

/// The built-in dense two-phase primal simplex (the default backend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexBackend;

impl LpBackend for SimplexBackend {
    fn name(&self) -> &str {
        "dense-simplex"
    }

    fn solve(&self, problem: &LpProblem) -> LpSolution {
        problem.solve()
    }
}

/// Blanket impl so `&B` and `&dyn LpBackend` are themselves backends — lets
/// callers thread borrowed backends through generic code.
impl<B: LpBackend + ?Sized> LpBackend for &B {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn solve(&self, problem: &LpProblem) -> LpSolution {
        (**self).solve(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{Cmp, LpStatus};

    fn toy_problem() -> LpProblem {
        // minimize -x - 2y  s.t.  x + y <= 4, y <= 3; optimum -7 at (1, 3).
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
        lp
    }

    #[test]
    fn simplex_backend_matches_direct_solve() {
        let lp = toy_problem();
        let direct = lp.solve();
        let via_backend = SimplexBackend.solve(&lp);
        assert_eq!(via_backend.status, LpStatus::Optimal);
        assert!((via_backend.objective - direct.objective).abs() < 1e-9);
    }

    #[test]
    fn backends_work_behind_references_and_dyn() {
        let lp = toy_problem();
        let backend = SimplexBackend;
        let by_ref: &SimplexBackend = &backend;
        assert_eq!(by_ref.name(), "dense-simplex");
        assert!(by_ref.solve(&lp).is_optimal());
        let dynamic: &dyn LpBackend = &backend;
        assert!(dynamic.solve(&lp).is_optimal());
        assert_eq!(dynamic.name(), "dense-simplex");
    }
}
