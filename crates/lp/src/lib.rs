//! A self-contained linear-programming solver.
//!
//! The template-based inference of the central-moment analysis reduces bound
//! derivation to linear programming (§3.4 of the paper).  The paper's artifact
//! used Gurobi; this crate provides the substitute: two-phase primal simplex
//! solvers over `f64` with a pluggable pricing core.
//!
//! Solvers are pluggable and session-based: the [`LpBackend`] trait (see
//! [`backend`] and `DESIGN.md` for the contract) decouples problem
//! construction from solving, and [`LpBackend::open`] yields an [`LpSession`]
//! that supports repeated `minimize` calls, incremental row/column addition,
//! and batch solving of independent problems.  Both shipped backends —
//! [`SimplexBackend`], the dense reference, and [`SparseBackend`], whose
//! sessions keep their state warm between solves — are configurations of
//! **one shared simplex core** (`core`), parameterized by matrix
//! representation and by basis factorization ([`factor`]: explicit dense
//! `B⁻¹`, or Markowitz LU with eta-file updates via [`FactorKind::Lu`]).
//!
//! The pivoting core is shared machinery ([`pricing`], [`SolverTuning`]):
//! Dantzig, **devex** (the default), and sectioned/parallel **partial**
//! pricing behind one [`PricingRule`] knob, a presolve pass that shrinks
//! each system before it is solved, the Harris two-pass ratio test with a
//! bounded anti-degeneracy perturbation, Bland's rule demoted to a
//! size-scaled last resort ([`bland_fallback_threshold`]), and a
//! **dual-simplex warm re-solve** ([`WarmStrategy`]) that repairs a session
//! after incremental rows with a handful of dual pivots instead of a
//! phase-1 restart.  Every solve reports its effort in [`SolveStats`].
//!
//! Solves can be **budgeted** ([`SolveBudget`] on [`SolverTuning::budget`]):
//! a wall-clock deadline, an iteration cap, and a refactorization cap,
//! checked cooperatively per pivot batch and carried over across every
//! minimize/warm re-solve of a session.  Running out yields
//! [`LpStatus::BudgetExhausted`] — a statement about resources that is never
//! an infeasibility verdict (see the contract in [`backend`]).
//!
//! The problem format is deliberately small: named variables that are either
//! non-negative or free (free variables are split internally), linear
//! constraints `a·x {≤,≥,=} b`, and a linear objective to *minimize*.
//!
//! # Example
//!
//! ```
//! use cma_lp::{Cmp, LpProblem, LpStatus};
//!
//! // minimize  -x - 2y   s.t.  x + y <= 4,  y <= 3,  x, y >= 0
//! let mut lp = LpProblem::new();
//! let x = lp.add_var("x", false);
//! let y = lp.add_var("y", false);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
//! lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
//! let sol = lp.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - (-7.0)).abs() < 1e-7);
//! assert!((sol.value(x) - 1.0).abs() < 1e-7);
//! assert!((sol.value(y) - 3.0).abs() < 1e-7);
//! ```

pub mod backend;
#[doc(hidden)]
pub mod bench_support;
mod core;
pub mod factor;
mod presolve;
pub mod pricing;
pub mod simplex;
pub mod sparse;

pub use backend::{LpBackend, LpSession, SimplexBackend, SparseBackend, TunedBackend};
pub use factor::{FactorKind, WarmStrategy};
pub use pricing::{
    bland_fallback_threshold, DualPricing, DualRatio, PricingRule, SolveBudget, SolverTuning,
    DEADLINE_CHECK_PERIOD,
};
pub use simplex::{Cmp, LpProblem, LpSolution, LpStatus, LpVarId, SolveStats};
pub use sparse::SparseMatrix;
