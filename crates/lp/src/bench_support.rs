//! Benchmark-only window onto the simplex kernels.
//!
//! The `cma-bench` crate times ftran/btran/eta-apply on real solved bases
//! (reached as `central_moment_analysis::lp::bench_support`), but the
//! kernel plumbing — `SimplexCore`'s workspace, the factorization seam —
//! is deliberately crate-private.  This module is the narrow, *unstable*
//! bridge: hidden from docs, no API promises, nothing here is meant for
//! solver clients.
//!
//! Every kernel call reuses the fixture's buffers, so after the first call
//! the benchmark measures the kernel, not the allocator — the same
//! zero-allocation contract the solve hot loop runs under.

use crate::backend::LpSession;
use crate::core::SimplexCore;
use crate::pricing::SolverTuning;
use crate::simplex::{Cmp, LpProblem, LpStatus, LpVarId};

/// A solved simplex basis plus reusable output buffers for timing the
/// linear-algebra kernels in isolation.
pub struct KernelFixture {
    core: SimplexCore,
    /// Standard-form costs of the solved objective (btran right-hand side).
    costs: Vec<f64>,
    /// The solved objective, kept for warm re-minimizes.
    objective: Vec<(LpVarId, f64)>,
    /// Reusable kernel output buffer.
    out: Vec<f64>,
}

impl KernelFixture {
    /// Opens a sparse-representation core over `problem`, solves its own
    /// objective to optimality, and captures the basis.  `None` when the
    /// solve does not end `Optimal` — a fixture over a failed solve would
    /// time garbage.
    pub fn solve(problem: &LpProblem, tuning: &SolverTuning) -> Option<KernelFixture> {
        let mut core = SimplexCore::open_with(problem, tuning, false);
        let solution = core.minimize(problem.objective());
        if solution.status != LpStatus::Optimal {
            return None;
        }
        let costs = core.split_costs(problem.objective());
        Some(KernelFixture {
            core,
            costs,
            objective: problem.objective().to_vec(),
            out: Vec::new(),
        })
    }

    /// Basis dimension `m` (rows of the standard form).
    pub fn rows(&self) -> usize {
        self.core.kernel_rows()
    }

    /// Standard-form columns currently nonbasic — the candidate entering
    /// columns whose directions an ftran benchmark should price.
    pub fn nonbasic_cols(&self) -> Vec<usize> {
        (0..self.core.kernel_num_cols())
            .filter(|&j| !self.core.kernel_is_basic(j))
            .collect()
    }

    /// Pins every kernel call to the dense scan (`true`) or restores the
    /// hyper-sparse heuristic (`false`) — the A/B switch of the benchmark.
    pub fn force_dense(&mut self, on: bool) {
        self.core.kernel_force_dense(on);
    }

    /// Lifetime kernel counters of the session workspace:
    /// `(hyper_ftrans, hyper_btrans, dense_fallbacks, kernel_allocs)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        self.core.kernel_counters()
    }

    /// Current eta-file length of the factorization (0 right after a
    /// refactorization; grows with warm pivots under LU).
    pub fn eta_count(&self) -> usize {
        self.core.kernel_eta_count()
    }

    /// One ftran: `d = B⁻¹ A_j` for standard-form column `j`.  Returns a
    /// checksum of the direction so the call cannot be optimized away.
    pub fn ftran(&mut self, j: usize) -> f64 {
        let mut out = std::mem::take(&mut self.out);
        self.core.direction_into(j, &mut out);
        let sum: f64 = out.iter().sum();
        self.out = out;
        sum
    }

    /// [`ftran`](Self::ftran) writing the full direction into `out`
    /// (for agreement tests that compare component-wise).
    pub fn ftran_into(&mut self, j: usize, out: &mut Vec<f64>) {
        self.core.direction_into(j, out);
    }

    /// [`btran`](Self::btran) writing the full dual-price vector into `out`.
    pub fn btran_into(&mut self, out: &mut Vec<f64>) {
        let costs = std::mem::take(&mut self.costs);
        self.core.dual_prices_into(&costs, out);
        self.costs = costs;
    }

    /// [`inverse_row`](Self::inverse_row) writing the full row into `out`.
    pub fn inverse_row_into(&mut self, p: usize, out: &mut Vec<f64>) {
        self.core.inverse_row_into(p, out);
    }

    /// One btran: `y = c_Bᵀ B⁻¹` under the solved objective's costs.
    /// Returns a checksum of the dual prices.
    pub fn btran(&mut self) -> f64 {
        let mut out = std::mem::take(&mut self.out);
        let costs = std::mem::take(&mut self.costs);
        self.core.dual_prices_into(&costs, &mut out);
        let sum: f64 = out.iter().sum();
        self.costs = costs;
        self.out = out;
        sum
    }

    /// One unit-rhs btran: row `p` of `B⁻¹`.  Returns a checksum.
    pub fn inverse_row(&mut self, p: usize) -> f64 {
        let mut out = std::mem::take(&mut self.out);
        self.core.inverse_row_into(p, &mut out);
        let sum: f64 = out.iter().sum();
        self.out = out;
        sum
    }

    /// Applies up to `k` factorization updates (cycling over the nonbasic
    /// columns), so subsequent [`ftran`](Self::ftran) and
    /// [`btran`](Self::btran) calls time the *eta-apply* path — solving
    /// through the update-laden factorization (spiked U columns plus
    /// whatever row etas the eliminations produced; see
    /// [`eta_count`](Self::eta_count)).  A completed solve always ends
    /// freshly refactorized, so direct updates are the only way to pin an
    /// updated factorization still; the fixture must not be re-solved
    /// afterwards (the basis bookkeeping is left untouched).  Returns the
    /// number of updates that were applied.
    pub fn grow_etas(&mut self, k: usize) -> usize {
        let cols = self.nonbasic_cols();
        let mut applied = 0;
        for j in cols.into_iter().cycle().take(k.max(1) * 4) {
            if applied >= k {
                break;
            }
            if self.core.kernel_grow_eta(j) {
                applied += 1;
            }
        }
        applied
    }

    /// Appends a (typically violated) cut and warm re-solves the captured
    /// objective — exercising the dual warm path end to end.  Returns
    /// whether the re-solve stayed optimal.
    pub fn cut_and_resolve(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) -> bool {
        self.core.add_constraint(terms, cmp, rhs);
        let objective = std::mem::take(&mut self.objective);
        let solution = self.core.minimize(&objective);
        self.objective = objective;
        if solution.status != LpStatus::Optimal {
            return false;
        }
        // The cut added a row, so the standard form grew a slack column:
        // refresh the cost vector to the new width.
        self.costs = self.core.split_costs(&self.objective);
        true
    }
}
