//! Sparse revised simplex — the stateful engine behind
//! [`SparseBackend`](crate::SparseBackend) sessions.
//!
//! Where the dense reference solver carries a full `m × n` tableau through
//! every pivot, the revised method keeps only
//!
//! * the constraint columns in sparse form (one `(row, coeff)` list per
//!   column, assembled from the problem's CSR rows),
//! * a dense `m × m` basis inverse `B⁻¹`, and
//! * the basic values `x_B = B⁻¹ b`.
//!
//! Pricing computes `y = c_Bᵀ B⁻¹` once per iteration and scores each column
//! by a sparse dot product, so an iteration costs `O(m² + nnz)` instead of
//! the tableau's `O(m · n)` — the win the Fig. 10 chain programs need, whose
//! constraint matrices have a few nonzeros per row but thousands of columns.
//!
//! Being stateful buys the session operations of the [`LpSession`] contract:
//!
//! * **re-minimize** — a new objective restarts phase 2 from the previous
//!   optimal basis (the constraint set is unchanged, so that basis is still
//!   feasible) and skips phase 1 entirely;
//! * **incremental rows** — an added row extends the basis in place: the new
//!   row's slack (or a fresh artificial, when the current point violates the
//!   row) becomes basic, `B⁻¹` grows by one bordered row, and only the new
//!   artificials — never the whole system — go through phase 1;
//! * **incremental columns** — a new variable enters nonbasic at zero and
//!   disturbs nothing.
//!
//! Numerical discipline mirrors the dense solver: a pluggable pricing rule
//! (devex by default — see [`pricing`](crate::pricing)), the Harris two-pass
//! ratio test with a bounded right-hand-side perturbation against degenerate
//! cycling (Bland's rule survives only as the size-scaled last resort),
//! periodic refactorization of `B⁻¹` from the pristine columns, and
//! fresh-refactorized confirmation before optimality or unboundedness is
//! declared.

// Simplex kernels index several parallel vectors (directions, basic values,
// inverse rows) at once; indexed loops are the clearest form here, as in the
// dense solver.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;

use crate::backend::LpSession;
use crate::pricing::{bland_fallback_threshold, PivotView, PricingRule};
use crate::simplex::{Cmp, LpProblem, LpSolution, LpStatus, LpVarId, SolveStats};

const EPS: f64 = 1e-9;
/// Minimum magnitude accepted for a pivot element.
const PIVOT_EPS: f64 = 1e-7;
/// Tolerance used when confirming unboundedness against fresh reduced costs.
const UNBOUNDED_EPS: f64 = 1e-6;
const FEAS_EPS: f64 = 1e-6;

/// What a standard-form column stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    /// A (split) problem variable.
    Structural,
    /// A slack variable of an inequality row.
    Slack,
    /// An artificial variable (phase-1 only; banned from phase 2).
    Artificial,
}

/// The revised-simplex session state (see the [module docs](self)).
#[derive(Debug, Clone)]
pub(crate) struct RevisedState {
    /// Problem variable → (positive column, optional negative column).
    var_cols: Vec<(usize, Option<usize>)>,
    /// Sparse columns of the standard-form matrix: `(row, coeff)` lists.
    cols: Vec<Vec<(usize, f64)>>,
    kind: Vec<ColKind>,
    /// Right-hand sides, sign-normalized at row entry so the initial basic
    /// value of every row is non-negative.
    b: Vec<f64>,
    /// Per-row column forming the from-scratch initial basis (slack with
    /// coefficient +1, or an artificial).
    init_basis: Vec<usize>,
    basis: Vec<usize>,
    is_basic: Vec<bool>,
    /// Dense basis inverse; `binv[i][r]` is entry `(i, r)` of `B⁻¹`.
    binv: Vec<Vec<f64>>,
    /// Current basic values, aligned with `basis`.
    xb: Vec<f64>,
    /// Whether `basis`/`binv`/`xb` describe a feasible point of the current
    /// rows (true after an `Optimal` minimize; false forces a rebuild).
    warm: bool,
    /// Whether incrementally added rows introduced artificials that still
    /// carry positive values (phase 1 over them runs at the next minimize).
    needs_phase1: bool,
    /// Lifetime pivot counter (diagnostics only).
    pivots: usize,
    /// Pivots applied since `binv` was last rebuilt from pristine columns
    /// (by [`rebuild`](Self::rebuild) or a successful refactorization).
    /// Gates the O(m³) refreshes: a pristine inverse needs none.
    stale_pivots: usize,
    /// Pricing rule used to choose entering columns.
    pricing: PricingRule,
    /// Per-`minimize` solver counters (reset at each `minimize`).
    stats: SolveStats,
    /// Whether `xb` currently carries an anti-degeneracy shift (washed out by
    /// the next refactorization; must be washed before values are extracted).
    xb_shifted: bool,
}

impl RevisedState {
    /// Opens a session over the problem's variables and constraint rows,
    /// pricing with the given rule.
    pub(crate) fn open_with(problem: &LpProblem, pricing: PricingRule) -> RevisedState {
        let mut state = RevisedState {
            var_cols: Vec::new(),
            cols: Vec::new(),
            kind: Vec::new(),
            b: Vec::new(),
            init_basis: Vec::new(),
            basis: Vec::new(),
            is_basic: Vec::new(),
            binv: Vec::new(),
            xb: Vec::new(),
            warm: false,
            needs_phase1: false,
            pivots: 0,
            stale_pivots: 0,
            pricing,
            stats: SolveStats::default(),
            xb_shifted: false,
        };
        for v in 0..problem.num_vars() {
            state.push_var(problem.is_free(LpVarId::from_index(v)));
        }
        for i in 0..problem.num_constraints() {
            let terms: Vec<(LpVarId, f64)> = problem.constraint_terms(i).collect();
            state.append_row(&terms, problem.cmp(i), problem.rhs(i));
        }
        state
    }

    fn push_var(&mut self, free: bool) -> LpVarId {
        let pos = self.new_col(ColKind::Structural);
        let neg = free.then(|| self.new_col(ColKind::Structural));
        self.var_cols.push((pos, neg));
        LpVarId::from_index(self.var_cols.len() - 1)
    }

    fn new_col(&mut self, kind: ColKind) -> usize {
        self.cols.push(Vec::new());
        self.kind.push(kind);
        self.is_basic.push(false);
        self.cols.len() - 1
    }

    /// Splits free variables and accumulates a constraint row into per-column
    /// entries (sorted and deduplicated by the map).
    fn split_row(&self, terms: &[(LpVarId, f64)]) -> BTreeMap<usize, f64> {
        let mut entries: BTreeMap<usize, f64> = BTreeMap::new();
        for &(v, coeff) in terms {
            let (pos, neg) = self.var_cols[v.index()];
            *entries.entry(pos).or_insert(0.0) += coeff;
            if let Some(neg) = neg {
                *entries.entry(neg).or_insert(0.0) -= coeff;
            }
        }
        entries.retain(|_, v| *v != 0.0);
        entries
    }

    /// Appends a row in standard form (sign-normalized, slack attached, an
    /// artificial created when the slack cannot seed the initial basis).
    /// When the session is warm, the basis is extended in place.
    fn append_row(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        let mut entries = self.split_row(terms);
        let (mut rhs, mut cmp) = (rhs, cmp);
        if rhs < 0.0 {
            for v in entries.values_mut() {
                *v = -*v;
            }
            rhs = -rhs;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        let row = self.b.len();
        for (&col, &val) in &entries {
            self.cols[col].push((row, val));
        }
        let slack = match cmp {
            Cmp::Le | Cmp::Ge => {
                let coeff = if cmp == Cmp::Le { 1.0 } else { -1.0 };
                let col = self.new_col(ColKind::Slack);
                self.cols[col].push((row, coeff));
                Some((col, coeff))
            }
            Cmp::Eq => None,
        };
        let init_col = match slack {
            Some((col, coeff)) if coeff > 0.0 => col,
            _ => {
                let art = self.new_col(ColKind::Artificial);
                self.cols[art].push((row, 1.0));
                art
            }
        };
        self.b.push(rhs);
        self.init_basis.push(init_col);

        if self.warm {
            self.extend_basis(row, &entries, slack, init_col, rhs);
        }
    }

    /// Extends the warm basis with a freshly appended row: picks a basic
    /// column whose value at the current point is non-negative (the slack
    /// when the row already holds, otherwise an artificial absorbing the
    /// violation) and borders `B⁻¹` accordingly.
    fn extend_basis(
        &mut self,
        row: usize,
        entries: &BTreeMap<usize, f64>,
        slack: Option<(usize, f64)>,
        init_col: usize,
        rhs: f64,
    ) {
        let m_old = self.basis.len();
        // Current point, per column: basic values, everything else zero.
        let lhs: f64 = entries
            .iter()
            .map(|(&col, &a)| {
                if self.is_basic[col] {
                    let k = self.basis.iter().position(|&c| c == col).expect("basic");
                    a * self.xb[k]
                } else {
                    0.0
                }
            })
            .sum();
        let resid = rhs - lhs;

        // Choose the entering basic column and its coefficient in this row.
        let (basic_col, coeff) = match slack {
            Some((col, sc)) if resid / sc >= -EPS => (col, sc),
            _ if self.kind[init_col] == ColKind::Artificial && resid >= -EPS => (init_col, 1.0),
            _ => {
                // The current point violates the row in the direction no
                // existing column can absorb: add an artificial of the
                // matching sign.
                let sign = if resid >= 0.0 { 1.0 } else { -1.0 };
                let art = self.new_col(ColKind::Artificial);
                self.cols[art].push((row, sign));
                (art, sign)
            }
        };
        let value = (resid / coeff).max(0.0);
        if self.kind[basic_col] == ColKind::Artificial && value > FEAS_EPS {
            self.needs_phase1 = true;
        }

        // Border B⁻¹: with M = [[B, 0], [w, c]] the inverse is
        // [[B⁻¹, 0], [-(w·B⁻¹)/c, 1/c]], where w holds the new row's
        // coefficients at the old basic columns.
        let w: Vec<f64> = self
            .basis
            .iter()
            .map(|&col| entries.get(&col).copied().unwrap_or(0.0))
            .collect();
        let mut border = vec![0.0; m_old + 1];
        for (r, border_r) in border.iter_mut().enumerate().take(m_old) {
            let wb: f64 = (0..m_old).map(|k| w[k] * self.binv[k][r]).sum();
            *border_r = -wb / coeff;
        }
        border[m_old] = 1.0 / coeff;
        for r in self.binv.iter_mut() {
            r.push(0.0);
        }
        self.binv.push(border);
        self.basis.push(basic_col);
        self.is_basic[basic_col] = true;
        self.xb.push(value);
    }

    /// Resets the solver state to the from-scratch initial basis.
    fn rebuild(&mut self) {
        let m = self.b.len();
        self.basis = self.init_basis.clone();
        for flag in self.is_basic.iter_mut() {
            *flag = false;
        }
        for &col in &self.basis {
            self.is_basic[col] = true;
        }
        self.binv = (0..m)
            .map(|i| {
                let mut row = vec![0.0; m];
                row[i] = 1.0;
                row
            })
            .collect();
        self.xb = self.b.clone();
        self.stale_pivots = 0;
        self.needs_phase1 = self.kind.contains(&ColKind::Artificial);
    }

    /// `y = c_Bᵀ B⁻¹`.
    fn dual_prices(&self, col_costs: &[f64]) -> Vec<f64> {
        let m = self.basis.len();
        let mut y = vec![0.0; m];
        for k in 0..m {
            let cb = col_costs.get(self.basis[k]).copied().unwrap_or(0.0);
            if cb.abs() > EPS {
                for (yr, br) in y.iter_mut().zip(&self.binv[k]) {
                    *yr += cb * br;
                }
            }
        }
        y
    }

    /// Reduced cost of one column under dual prices `y`.
    fn reduced_cost(&self, j: usize, col_costs: &[f64], y: &[f64]) -> f64 {
        let dot: f64 = self.cols[j].iter().map(|&(r, a)| y[r] * a).sum();
        col_costs[j] - dot
    }

    /// `d = B⁻¹ A_j`.
    fn direction(&self, j: usize) -> Vec<f64> {
        let m = self.basis.len();
        let mut d = vec![0.0; m];
        let entries = &self.cols[j];
        for (di, row) in d.iter_mut().zip(&self.binv) {
            let mut acc = 0.0;
            for &(r, a) in entries {
                acc += row[r] * a;
            }
            *di = acc;
        }
        d
    }

    fn pivot(&mut self, p: usize, entering: usize, d: &[f64]) {
        let m = self.basis.len();
        let theta = self.xb[p] / d[p];
        for i in 0..m {
            if i != p {
                self.xb[i] -= theta * d[i];
            }
        }
        self.xb[p] = theta;
        let dp = d[p];
        for x in self.binv[p].iter_mut() {
            *x /= dp;
        }
        // One clone of the pivot row sidesteps the split borrow; the O(m)
        // copy is dominated by the O(m²) update below.
        let pivot_row = self.binv[p].clone();
        for i in 0..m {
            if i != p && d[i].abs() > EPS {
                let factor = d[i];
                for (x, pr) in self.binv[i].iter_mut().zip(&pivot_row) {
                    *x -= factor * pr;
                }
            }
        }
        self.is_basic[self.basis[p]] = false;
        self.is_basic[entering] = true;
        self.basis[p] = entering;
        self.pivots += 1;
        self.stale_pivots = self.stale_pivots.saturating_add(1);
    }

    /// Nudges every (near-)zero basic value by a tiny, row-unique amount —
    /// the bounded right-hand-side perturbation that breaks degenerate pivot
    /// cycles (see [`degeneracy_shift`](crate::pricing::degeneracy_shift)).
    /// The shift is temporary: any refactorization recomputes `xb` from the
    /// pristine right-hand sides.
    fn shift_degenerate_basics(&mut self, round: usize) {
        for (i, x) in self.xb.iter_mut().enumerate() {
            if x.abs() <= FEAS_EPS {
                *x += crate::pricing::degeneracy_shift(i, round);
            }
        }
        self.xb_shifted = true;
    }

    /// Recomputes `B⁻¹` (Gauss-Jordan with partial pivoting on the pristine
    /// basis columns) and `x_B = B⁻¹ b`; returns `false` on a numerically
    /// singular basis, leaving the state untouched.
    fn refactorize(&mut self) -> bool {
        let m = self.basis.len();
        let stride = 2 * m;
        // Augmented [B | I], one flat allocation for cache-friendly sweeps.
        let mut work = vec![0.0; m * stride];
        for i in 0..m {
            work[i * stride + m + i] = 1.0;
        }
        for (k, &col) in self.basis.iter().enumerate() {
            for &(r, a) in &self.cols[col] {
                work[r * stride + k] = a;
            }
        }
        for k in 0..m {
            let pivot_row = (k..m).max_by(|&a, &b| {
                work[a * stride + k]
                    .abs()
                    .partial_cmp(&work[b * stride + k].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(r) = pivot_row else { return m == 0 };
            if work[r * stride + k].abs() < 1e-11 {
                return false;
            }
            if r != k {
                for j in 0..stride {
                    work.swap(k * stride + j, r * stride + j);
                }
            }
            let pivot = work[k * stride + k];
            for x in &mut work[k * stride..(k + 1) * stride] {
                *x /= pivot;
            }
            for i in 0..m {
                if i != k {
                    let factor = work[i * stride + k];
                    if factor != 0.0 {
                        let (head, tail) = work.split_at_mut(k.max(i) * stride);
                        let (row_i, row_k) = if i > k {
                            (&mut tail[..stride], &head[k * stride..(k + 1) * stride])
                        } else {
                            (&mut head[i * stride..(i + 1) * stride][..], &tail[..stride])
                        };
                        // Skip the already-eliminated prefix: columns < k of
                        // row k are zero.
                        for (x, rk) in row_i[k..].iter_mut().zip(&row_k[k..]) {
                            *x -= factor * rk;
                        }
                    }
                }
            }
        }
        // B⁻¹ maps basis positions to rows: position k's row of the inverse
        // is row k of the right half (B X = I solved column-wise).  The
        // right half is (B⁻¹) laid out so that entry (k, r) = work[k][m + r];
        // but positions and rows are both indexed 0..m here with B's column k
        // being basis[k], so binv[k] = work[k][m..].
        self.binv = (0..m)
            .map(|k| work[k * stride + m..(k + 1) * stride].to_vec())
            .collect();
        self.xb = self
            .binv
            .iter()
            .map(|row| row.iter().zip(&self.b).map(|(x, b)| x * b).sum())
            .collect();
        self.stale_pivots = 0;
        self.stats.refactorizations += 1;
        self.xb_shifted = false;
        true
    }

    /// Runs simplex iterations for the given standard-form column costs.
    /// `ban_artificials` excludes artificial columns from entering (phase 2).
    fn iterate(
        &mut self,
        col_costs: &[f64],
        ban_artificials: bool,
        max_iters: usize,
    ) -> Result<(), LpStatus> {
        let debug = std::env::var_os("CMA_LP_DEBUG").is_some();
        let start = if debug {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let before = self.pivots;
        let result = self.iterate_inner(col_costs, ban_artificials, max_iters);
        if let Some(start) = start {
            eprintln!(
                "[cma-lp revised] phase({}) {:?} in {:.1} ms: {} rows, {} cols, {} pivots",
                if ban_artificials { 2 } else { 1 },
                result,
                start.elapsed().as_secs_f64() * 1e3,
                self.basis.len(),
                self.cols.len(),
                self.pivots - before,
            );
        }
        result
    }

    fn iterate_inner(
        &mut self,
        col_costs: &[f64],
        ban_artificials: bool,
        max_iters: usize,
    ) -> Result<(), LpStatus> {
        let bland_after = bland_fallback_threshold(self.basis.len(), self.cols.len());
        // How many pivots of drift the inverse may accumulate before it is
        // recomputed from the pristine columns (an O(m³) Gauss-Jordan) —
        // both periodically and before declaring optimality.
        let refresh_period = 100;
        let mut pricer = self.pricing.pricer(self.cols.len());
        let mut degen_streak = 0usize;
        let mut shift_rounds = 0usize;
        // Dual prices are maintained incrementally (an O(m) update per
        // pivot) and recomputed from scratch at refresh points and before
        // any optimality/unboundedness verdict.
        let mut y = self.dual_prices(col_costs);
        // Chooses the entering column: the configured pricer, or — in the
        // last-resort regime — Bland's first improving column.
        let pick = |state: &RevisedState,
                    pricer: &mut dyn crate::pricing::Pricer,
                    costs: &[f64],
                    y: &[f64],
                    bland: bool|
         -> Option<usize> {
            let candidate = |j: usize| {
                !(state.is_basic[j] || ban_artificials && state.kind[j] == ColKind::Artificial)
            };
            if bland {
                (0..state.cols.len())
                    .find(|&j| candidate(j) && state.reduced_cost(j, costs, y) < -EPS)
            } else {
                pricer.select(state.cols.len(), &candidate, &|j| {
                    state.reduced_cost(j, costs, y)
                })
            }
        };
        for iter in 0..max_iters {
            self.stats.iterations += 1;
            if self.stale_pivots >= refresh_period {
                // Also washes out any live anti-degeneracy shift: the basic
                // values are recomputed from the pristine right-hand sides.
                self.refactorize();
                y = self.dual_prices(col_costs);
            }
            let bland = iter >= bland_after;
            if !bland && degen_streak >= crate::pricing::DEGEN_PIVOT_STREAK {
                // A cycle-length streak of zero-length steps: engage the
                // bounded right-hand-side perturbation so the tied ratio
                // tests pick distinct rows and strictly positive steps.
                shift_rounds += 1;
                self.shift_degenerate_basics(shift_rounds);
                degen_streak = 0;
            }
            let mut entering = pick(self, pricer.as_mut(), col_costs, &y, bland);
            if entering.is_none() {
                // Recompute the incrementally maintained duals before
                // trusting the verdict, and — when a full period of drift
                // has accumulated — refactorize the basis too (below that
                // the inverse is as fresh as the dense reference solver's
                // tableau ever is between its periodic refreshes).
                if self.stale_pivots >= refresh_period {
                    self.refactorize();
                }
                y = self.dual_prices(col_costs);
                entering = pick(self, pricer.as_mut(), col_costs, &y, bland);
                if entering.is_none() {
                    return Ok(());
                }
            }
            let entering = entering.expect("checked above");

            let mut d = self.direction(entering);
            let leaving = if bland {
                self.ratio_test(&d, ban_artificials)
            } else {
                self.harris_ratio_test(&d, ban_artificials)
            };
            let Some(p) = leaving else {
                // Apparent unboundedness: refactorize and re-confirm before
                // reporting, so drift (or a live shift) cannot cause a false
                // positive.
                self.refactorize();
                y = self.dual_prices(col_costs);
                if self.reduced_cost(entering, col_costs, &y) > -UNBOUNDED_EPS {
                    continue;
                }
                d = self.direction(entering);
                if d.iter()
                    .enumerate()
                    .any(|(i, &di)| self.blocking_rate(i, di, ban_artificials) > PIVOT_EPS)
                {
                    continue;
                }
                return Err(LpStatus::Unbounded);
            };
            let theta = self.xb[p] / d[p];
            if theta.abs() <= FEAS_EPS {
                degen_streak += 1;
            } else {
                degen_streak = 0;
            }
            // Classic dual-price update: Δy = (r_q / d_p) · (B⁻¹)ₚ, which in
            // terms of the *post-pivot* row (B'⁻¹)ₚ = (B⁻¹)ₚ / d_p is simply
            // Δy = r_q · (B'⁻¹)ₚ — it zeroes the entering column's reduced
            // cost (r'_q = r_q − (r_q/d_p)·d_p = 0).
            let rc_entering = self.reduced_cost(entering, col_costs, &y);
            {
                // Devex weight update from the pre-pivot pivot row
                // ρ = (B⁻¹)ₚ: α_j = ρ·A_j, one sparse dot per candidate.
                let rho = &self.binv[p];
                let cols = &self.cols;
                let is_basic = &self.is_basic;
                let kind = &self.kind;
                let candidate =
                    |j: usize| !(is_basic[j] || ban_artificials && kind[j] == ColKind::Artificial);
                let alpha = |j: usize| cols[j].iter().map(|&(r, a)| rho[r] * a).sum::<f64>();
                pricer.observe_pivot(&PivotView {
                    entering,
                    leaving: self.basis[p],
                    alpha_q: d[p],
                    n_cols: cols.len(),
                    candidate: &candidate,
                    alpha: &alpha,
                });
            }
            self.pivot(p, entering, &d);
            if rc_entering.abs() > EPS {
                for (yr, br) in y.iter_mut().zip(&self.binv[p]) {
                    *yr += rc_entering * br;
                }
            }
        }
        Err(LpStatus::IterationLimit)
    }

    /// The rate at which row `i`'s basic value approaches its blocking bound
    /// as the entering variable grows, or 0 when the row does not block.
    ///
    /// Ordinary rows block when `d_i > 0` (the basic value falls toward 0).
    /// A row whose basic variable is a *zero-valued artificial* also blocks
    /// when `d_i < 0`: the artificial would re-grow above zero, silently
    /// abandoning the (equality) row it stands for — it must leave the basis
    /// in a degenerate pivot instead.
    /// `guard_artificials` is set in phase 2 only: there a leaving artificial
    /// can never re-enter (artificials are banned from pricing), so each
    /// guard pivot permanently retires one.  In phase 1 artificials are
    /// ordinary objective variables and the guard would two-cycle them.
    fn blocking_rate(&self, i: usize, di: f64, guard_artificials: bool) -> f64 {
        if di > PIVOT_EPS {
            di
        } else if guard_artificials
            && di < -PIVOT_EPS
            && self.kind[self.basis[i]] == ColKind::Artificial
            && self.xb[i] <= FEAS_EPS
        {
            -di
        } else {
            0.0
        }
    }

    /// Distance of row `i`'s basic value to the bound it blocks at
    /// (companion of [`blocking_rate`](Self::blocking_rate)).
    fn blocking_value(&self, i: usize, di: f64) -> f64 {
        if di > PIVOT_EPS {
            self.xb[i]
        } else {
            -self.xb[i]
        }
    }

    /// The classic exact ratio test with smallest-basis-index tie-breaking —
    /// the form Bland's anti-cycling guarantee requires, used only in the
    /// last-resort Bland regime.
    fn ratio_test(&self, d: &[f64], guard_artificials: bool) -> Option<usize> {
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, &di) in d.iter().enumerate() {
            let rate = self.blocking_rate(i, di, guard_artificials);
            if rate > PIVOT_EPS {
                let ratio = self.blocking_value(i, di) / rate;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.is_some_and(|l| self.basis[i] < self.basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        leaving
    }

    /// Two-pass Harris ratio test (see the dense solver's twin): pass 1
    /// relaxes the feasibility tolerance to find the loosest admissible step,
    /// pass 2 picks the numerically largest pivot among rows whose exact
    /// ratio stays within it — degenerate corners get stable pivots instead
    /// of tiny cycling ones.
    fn harris_ratio_test(&self, d: &[f64], guard_artificials: bool) -> Option<usize> {
        let mut theta_relaxed = f64::INFINITY;
        for (i, &di) in d.iter().enumerate() {
            let rate = self.blocking_rate(i, di, guard_artificials);
            if rate > PIVOT_EPS {
                let relaxed = (self.blocking_value(i, di) + crate::pricing::HARRIS_RELAX) / rate;
                if relaxed < theta_relaxed {
                    theta_relaxed = relaxed;
                }
            }
        }
        if !theta_relaxed.is_finite() {
            return None;
        }
        let mut leaving: Option<usize> = None;
        let mut best_pivot = 0.0;
        for (i, &di) in d.iter().enumerate() {
            let rate = self.blocking_rate(i, di, guard_artificials);
            if rate > PIVOT_EPS && self.blocking_value(i, di) / rate <= theta_relaxed {
                let better = rate > best_pivot
                    || (rate == best_pivot
                        && leaving.is_some_and(|l| self.basis[i] < self.basis[l]));
                if better {
                    best_pivot = rate;
                    leaving = Some(i);
                }
            }
        }
        leaving
    }

    /// Phase 1 over the artificial columns; returns `false` when the system
    /// is infeasible.
    fn run_phase1(&mut self, max_iters: usize) -> Result<bool, LpStatus> {
        let mut costs = vec![0.0; self.cols.len()];
        let mut any = false;
        for (j, &k) in self.kind.iter().enumerate() {
            if k == ColKind::Artificial {
                costs[j] = 1.0;
                any = true;
            }
        }
        if !any {
            return Ok(true);
        }
        self.iterate(&costs, false, max_iters)?;
        if self.xb_shifted {
            // Wash the anti-degeneracy shift out before judging feasibility.
            self.refactorize();
        }
        let artificial_sum: f64 = self
            .basis
            .iter()
            .zip(&self.xb)
            .filter(|&(&col, _)| self.kind[col] == ColKind::Artificial)
            .map(|(_, &v)| v)
            .sum();
        if artificial_sum > FEAS_EPS {
            return Ok(false);
        }
        self.drive_out_artificials();
        Ok(true)
    }

    /// Pivots zero-valued basic artificials out of the basis when a
    /// non-artificial column with a usable pivot element exists.
    fn drive_out_artificials(&mut self) {
        let m = self.basis.len();
        for p in 0..m {
            if self.kind[self.basis[p]] != ColKind::Artificial {
                continue;
            }
            let candidate = (0..self.cols.len()).find(|&j| {
                if self.is_basic[j] || self.kind[j] == ColKind::Artificial {
                    return false;
                }
                let dp: f64 = self.cols[j].iter().map(|&(r, a)| self.binv[p][r] * a).sum();
                dp.abs() > PIVOT_EPS
            });
            if let Some(j) = candidate {
                let d = self.direction(j);
                self.pivot(p, j, &d);
            }
        }
    }

    /// Standard-form column costs for a problem-variable objective.
    fn split_costs(&self, objective: &[(LpVarId, f64)]) -> Vec<f64> {
        let mut costs = vec![0.0; self.cols.len()];
        for &(v, coeff) in objective {
            let (pos, neg) = self.var_cols[v.index()];
            costs[pos] += coeff;
            if let Some(neg) = neg {
                costs[neg] -= coeff;
            }
        }
        costs
    }

    fn extract(&self, objective: &[(LpVarId, f64)], status: LpStatus) -> LpSolution {
        let mut col_values = vec![0.0; self.cols.len()];
        for (k, &col) in self.basis.iter().enumerate() {
            col_values[col] = self.xb[k];
        }
        let values: Vec<f64> = self
            .var_cols
            .iter()
            .map(|&(pos, neg)| col_values[pos] - neg.map(|n| col_values[n]).unwrap_or(0.0))
            .collect();
        let objective_value = objective.iter().map(|&(v, c)| c * values[v.index()]).sum();
        LpSolution::new(status, objective_value, values).with_stats(self.stats)
    }

    fn infeasible(&self) -> LpSolution {
        LpSolution::new(LpStatus::Infeasible, 0.0, vec![0.0; self.var_cols.len()])
            .with_stats(self.stats)
    }
}

impl LpSession for RevisedState {
    fn add_var(&mut self, _name: &str, free: bool) -> LpVarId {
        // A fresh column enters nonbasic at zero: the warm basis survives.
        self.push_var(free)
    }

    fn add_constraint(&mut self, terms: &[(LpVarId, f64)], cmp: Cmp, rhs: f64) {
        self.append_row(terms, cmp, rhs);
    }

    fn minimize(&mut self, objective: &[(LpVarId, f64)]) -> LpSolution {
        let m = self.b.len();
        let max_iters = 20_000 + 50 * (self.cols.len() + m);
        self.stats = SolveStats::default();
        if !self.warm {
            self.rebuild();
        }
        if self.needs_phase1 {
            match self.run_phase1(max_iters) {
                Ok(true) => self.needs_phase1 = false,
                Ok(false) => {
                    self.warm = false;
                    return self.infeasible();
                }
                // Resource exhaustion is not an infeasibility proof, and
                // phase 1 (objective ≥ 0) cannot be genuinely unbounded —
                // either way the solver gave up without a verdict.
                Err(_) => {
                    self.warm = false;
                    return LpSolution::new(
                        LpStatus::IterationLimit,
                        0.0,
                        vec![0.0; self.var_cols.len()],
                    )
                    .with_stats(self.stats);
                }
            }
        }
        let costs = self.split_costs(objective);
        let status = match self.iterate(&costs, true, max_iters) {
            Ok(()) => LpStatus::Optimal,
            Err(s) => s,
        };
        if self.xb_shifted {
            // Wash the anti-degeneracy shift out before extracting values.
            self.refactorize();
        }
        self.warm = status == LpStatus::Optimal;
        self.extract(objective, status)
    }

    fn num_vars(&self) -> usize {
        self.var_cols.len()
    }

    fn num_constraints(&self) -> usize {
        self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LpBackend, SparseBackend};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn matches_dense_on_the_doc_example() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
        let sol = SparseBackend.solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, -7.0);
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_rows_and_free_variables() {
        // x + y = 1, x - y = 5, both free: x = 3, y = -2.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", true);
        let y = lp.add_var("y", true);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 5.0);
        lp.set_objective(vec![(x, 1.0)]);
        let sol = SparseBackend.solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), -2.0);
    }

    #[test]
    fn reminimize_skips_phase_one_and_stays_exact() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let mut session = SparseBackend.open(&lp);
        let a = session.minimize(&[(x, 1.0), (y, 1.0)]);
        assert!(a.is_optimal());
        let b = session.minimize(&[(x, 5.0), (y, 1.0)]);
        assert!(b.is_optimal());
        // minimize 5x + y over the region: best at x = 0, y = 6 → 6.
        assert_close(b.objective, 6.0);
        let a_again = session.minimize(&[(x, 1.0), (y, 1.0)]);
        assert_eq!(a.status, a_again.status);
        assert_close(a.objective, a_again.objective);
    }

    #[test]
    fn incremental_rows_tighten_the_optimum() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let mut session = SparseBackend.open(&lp);
        let first = session.minimize(&[(x, -1.0), (y, -2.0)]);
        assert_close(first.objective, -8.0); // y = 4
                                             // A cutting row the current point violates: y <= 1.
        session.add_constraint(&[(y, 1.0)], Cmp::Le, 1.0);
        let second = session.minimize(&[(x, -1.0), (y, -2.0)]);
        assert!(second.is_optimal());
        assert_close(second.objective, -5.0); // x = 3, y = 1
                                              // And an equality row forcing x = 2.
        session.add_constraint(&[(x, 1.0)], Cmp::Eq, 2.0);
        let third = session.minimize(&[(x, -1.0), (y, -2.0)]);
        assert!(third.is_optimal());
        assert_close(third.objective, -4.0);
        assert_eq!(session.num_constraints(), 3);
    }

    #[test]
    fn incremental_vars_enter_at_zero() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let mut session = SparseBackend.open(&lp);
        assert_close(session.minimize(&[(x, -1.0)]).objective, -5.0);
        let z = session.add_var("z", false);
        session.add_constraint(&[(x, 1.0), (z, 1.0)], Cmp::Le, 6.0);
        let sol = session.minimize(&[(x, -1.0), (z, -1.0)]);
        assert!(sol.is_optimal());
        assert_close(sol.objective, -6.0);
        assert_eq!(session.num_vars(), 2);
    }

    #[test]
    fn infeasible_and_unbounded_statuses_match_dense() {
        let mut infeasible = LpProblem::new();
        let x = infeasible.add_var("x", false);
        infeasible.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        infeasible.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        infeasible.set_objective(vec![(x, 1.0)]);
        assert_eq!(
            SparseBackend.solve(&infeasible).status,
            LpStatus::Infeasible
        );

        let mut unbounded = LpProblem::new();
        let x = unbounded.add_var("x", false);
        unbounded.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        unbounded.set_objective(vec![(x, -1.0)]);
        assert_eq!(SparseBackend.solve(&unbounded).status, LpStatus::Unbounded);
    }

    #[test]
    fn infeasible_session_recovers_after_rebuild() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let mut session = SparseBackend.open(&lp);
        assert_eq!(session.minimize(&[(x, 1.0)]).status, LpStatus::Infeasible);
        // Deterministic on retry.
        assert_eq!(session.minimize(&[(x, 1.0)]).status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut lp = LpProblem::new();
        let x1 = lp.add_var("x1", false);
        let x2 = lp.add_var("x2", false);
        let x3 = lp.add_var("x3", false);
        let x4 = lp.add_var("x4", false);
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(vec![(x1, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(x1, -10.0), (x2, 57.0), (x3, 9.0), (x4, 24.0)]);
        let sol = SparseBackend.solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1  => y = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Cmp::Le, -4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.set_objective(vec![(y, 1.0)]);
        let sol = SparseBackend.solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 3.0);
    }
}
