//! Kernel-profile smoke guard (run by the CI `bench-smoke` job).
//!
//! Pins the two headline outcomes of the kernel overhaul so they cannot
//! silently regress:
//!
//! 1. **btran share** — on the n=8 walk-chain global LU analysis, backward
//!    solves must stay a bounded share of the pivot-level profile
//!    (`btran_ns / (ftran+btran+pricing+ratio)`).  Before the hyper-sparse
//!    unit-rhs btran and the sparse-loaded dual-price btran, the m seeding
//!    btrans of dual steepest edge dominated the profile; the guard fails
//!    if that world comes back.
//! 2. **steady-state kernel allocations** — a warm re-minimize on a solved
//!    chain session must report `kernel_allocs == 0`: every ftran/btran of
//!    the hot loop ran inside the session workspace without growing it.
//!
//! Exits nonzero (panics) on any violated pin, failing the CI job.

use central_moment_analysis::lp::{Cmp, LpBackend, LpProblem, SolverTuning, TunedBackend};
use central_moment_analysis::{Analysis, FactorKind, SolveMode, SparseBackend};
use cma_suite::synthetic;

/// Maximum btran share of the pivot-level profile on the n=8 global LU
/// analysis.  Observed ~0.16 with the hyper-sparse kernels; a dense
/// per-row seeding regression pushes it well past 0.6.  Pinned with ~3×
/// headroom for machine noise.
const BTRAN_SHARE_MAX: f64 = 0.5;

fn main() {
    // --- Pin 1: btran share on the n=8 walk-chain global LU analysis. ----
    let benchmark = synthetic::random_walk_chain(8).in_suite("synthetic");
    let report = Analysis::benchmark(&benchmark)
        .degree(2)
        .mode(SolveMode::Global)
        .factor(FactorKind::Lu)
        .soundness(false)
        .backend(SparseBackend)
        .run()
        .expect("n=8 walk-chain must analyze");
    let lp = &report.lp;
    let profile = lp.ftran_ns + lp.btran_ns + lp.pricing_ns + lp.ratio_ns;
    assert!(profile > 0, "pivot-level profile is empty");
    let share = lp.btran_ns as f64 / profile as f64;
    eprintln!(
        "perfsmoke: n=8 global lu — ftran {} µs, btran {} µs ({share:.2} of profile), \
         pricing {} µs, ratio {} µs; hyper {} ftran / {} btran, {} dense fallbacks",
        lp.ftran_ns / 1_000,
        lp.btran_ns / 1_000,
        lp.pricing_ns / 1_000,
        lp.ratio_ns / 1_000,
        lp.hyper_sparse_ftrans,
        lp.hyper_sparse_btrans,
        lp.dense_fallbacks,
    );
    assert!(
        share <= BTRAN_SHARE_MAX,
        "btran is {share:.2} of the pivot profile (pinned ≤ {BTRAN_SHARE_MAX})"
    );

    // --- Pin 2: steady-state kernel allocations on a warm session. -------
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..120)
        .map(|i| lp.add_var(format!("x{i}"), false))
        .collect();
    for w in vars.windows(2) {
        lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.5)], Cmp::Ge, 1.0);
    }
    lp.add_constraint(vec![(vars[0], 1.0)], Cmp::Le, 400.0);
    let objective: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    let backend = TunedBackend::new(SparseBackend, SolverTuning::with_factor(FactorKind::Lu));
    let mut session = backend.open(&lp);
    let first = session.minimize(&objective);
    assert!(first.is_optimal(), "chain stand-in must solve: {first:?}");
    session.add_constraint(&[(vars[0], 1.0)], Cmp::Ge, first.value(vars[0]) + 5.0);
    let recut = session.minimize(&objective);
    assert!(recut.is_optimal(), "cut re-solve must stay optimal");
    let steady = session.minimize(&objective);
    assert!(
        steady.is_optimal(),
        "steady-state re-solve must stay optimal"
    );
    assert_eq!(
        steady.stats.kernel_allocs, 0,
        "steady-state re-solve grew a kernel workspace buffer"
    );
    eprintln!(
        "perfsmoke: steady-state re-minimize kept kernel_allocs == 0 \
         ({} hyper ftran / {} hyper btran)",
        steady.stats.hyper_sparse_ftrans, steady.stats.hyper_sparse_btrans
    );
}
