//! Warm-resolve smoke guard (run by the CI `bench-smoke` job).
//!
//! Verifies the dual-simplex warm re-solve contract twice over:
//!
//! 1. **cutting row** — an incremental row added to an optimal LU-factored
//!    session over a hand-built chain-*shaped* LP (a 120-variable coupled
//!    path; `CUTTING_ROW_DUAL_BUDGET` is calibrated to it) must re-solve
//!    through a *small* number of dual pivots (no phase-1 restart, no
//!    iteration blow-up);
//! 2. **in-session soundness extension** — the real walk-chain fixture:
//!    the Thm 4.4 step-counting system layered onto the live engine session
//!    must complete via dual pivots, with total iterations bounded by the
//!    dual work plus the extension's own phase-2 effort (a phase-1 restart
//!    of the combined system would blow well past the budget).
//!
//! Exits nonzero (panics) on any violated budget, failing the CI job.

use central_moment_analysis::inference::{
    analyze_session, soundness_report_in_session, AnalysisOptions,
};
use central_moment_analysis::lp::{FactorKind, LpBackend, SolverTuning, TunedBackend};
use central_moment_analysis::suite::{synthetic, Benchmark};
use central_moment_analysis::{SolveMode, SparseBackend};

/// Dual pivots allowed for a single cutting row on the chain system.
/// Tightened from 32 to 8: the long-step bound-flipping ratio test plus
/// weighted (devex) leaving-row pricing repair a single cut in a handful of
/// pivots where the old most-negative/Harris combination wandered.
const CUTTING_ROW_DUAL_BUDGET: usize = 8;

fn main() {
    let n = 6;
    let benchmark = synthetic::random_walk_chain(n).in_suite("synthetic");
    let options = AnalysisOptions::degree(2)
        .with_mode(SolveMode::Global)
        .with_valuation(benchmark.valuation.clone())
        .with_factor(FactorKind::Lu);

    // --- Scenario 1: one cutting row on a solved chain-shaped LP. --------
    let backend = TunedBackend::new(SparseBackend, SolverTuning::with_factor(FactorKind::Lu));
    let lp = {
        use central_moment_analysis::lp::{Cmp, LpProblem};
        // A chain-shaped LP stand-in with the same warm-resolve mechanics:
        // a long path of coupled rows, solved, then cut.
        let mut lp = LpProblem::new();
        let vars: Vec<_> = (0..120)
            .map(|i| lp.add_var(format!("x{i}"), false))
            .collect();
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.5)], Cmp::Ge, 1.0);
        }
        lp.add_constraint(vec![(vars[0], 1.0)], Cmp::Le, 400.0);
        (lp, vars)
    };
    let (problem, vars) = lp;
    let objective: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    let mut session = backend.open(&problem);
    let first = session.minimize(&objective);
    assert!(first.is_optimal(), "chain stand-in must solve: {first:?}");
    // Cut: force the head variable above its current optimum.
    use central_moment_analysis::lp::Cmp;
    session.add_constraint(&[(vars[0], 1.0)], Cmp::Ge, first.value(vars[0]) + 5.0);
    let recut = session.minimize(&objective);
    assert!(
        recut.is_optimal(),
        "cut re-solve must stay optimal: {recut:?}"
    );
    assert!(
        recut.stats.dual_pivots >= 1,
        "cutting row resolved without dual pivots (phase-1 restart?)"
    );
    assert!(
        recut.stats.dual_pivots <= CUTTING_ROW_DUAL_BUDGET,
        "cutting row took {} dual pivots (budget {CUTTING_ROW_DUAL_BUDGET})",
        recut.stats.dual_pivots
    );
    eprintln!(
        "warmsmoke: cutting row re-solved in {} dual pivots, {} iterations",
        recut.stats.dual_pivots, recut.stats.iterations
    );

    // --- Scenario 2: the real in-session soundness extension. ------------
    let (_result, mut engine_session) =
        analyze_session(&benchmark.program, &options, &SparseBackend)
            .expect("walk-chain analyzable");
    let report = soundness_report_in_session(&mut engine_session, &benchmark.program, 2);
    assert!(
        report.reused_constraint_store,
        "soundness must ride the live session"
    );
    assert!(
        report.termination_moment.is_some(),
        "walk-chain termination moment must be derivable"
    );
    let stats = engine_session.extension_stats();
    assert!(
        stats.dual_pivots >= 1,
        "soundness extension completed without dual pivots (phase-1 restart?)"
    );
    // A phase-1 restart re-solves the whole combined system from scratch
    // (iterations far beyond any per-row budget); the warm dual path spends
    // a bounded number of (degenerate) dual pivots per appended row — ~8 on
    // this fixture — plus the extension's own phase-2 effort.
    let rows = report.extension_constraints;
    assert!(
        stats.dual_pivots <= 16 * rows,
        "soundness extension took {} dual pivots for {rows} rows",
        stats.dual_pivots
    );
    assert!(
        stats.iterations <= stats.dual_pivots + 8 * rows,
        "soundness extension iterations ({}) blew past the warm budget \
         ({} dual pivots + 8×{rows} rows)",
        stats.iterations,
        stats.dual_pivots
    );
    eprintln!(
        "warmsmoke: soundness extension (+{rows} rows, +{} vars) re-solved in \
         {} dual pivots, {} iterations",
        report.extension_variables, stats.dual_pivots, stats.iterations
    );

    // --- Scenario 3: in-session degree escalation beats the cold solve. --
    // The warm dual repair after a degree 1 → 2 escalation must spend fewer
    // total simplex iterations than solving the degree-2 system cold — the
    // whole point of keeping the session warm.  Guarded on the two largest
    // chain sizes the CI bench sweep commits.
    use central_moment_analysis::Analysis;
    for n in [7usize, 8] {
        let chain = synthetic::random_walk_chain(n).in_suite("synthetic");
        let base = |b: &Benchmark| {
            Analysis::benchmark(b)
                .degree(2)
                .mode(SolveMode::Global)
                .factor(FactorKind::Lu)
                .soundness(false)
                .backend(SparseBackend)
        };
        let cold = base(&chain).run().expect("cold walk-chain analyzable");
        let escalated = base(&chain)
            .escalate_from(1)
            .run()
            .expect("escalated walk-chain analyzable");
        assert!(
            escalated.lp.iterations < cold.lp.iterations,
            "escalated walk-chain n={n} took {} iterations, cold took {}: \
             the warm dual repair regressed",
            escalated.lp.iterations,
            cold.lp.iterations
        );
        eprintln!(
            "warmsmoke: walk-chain n={n} escalation {} iterations vs cold {}",
            escalated.lp.iterations, cold.lp.iterations
        );
    }
}
