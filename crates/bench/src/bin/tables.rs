//! Regenerates the tables and figures of the paper's evaluation.
//!
//! ```text
//! cargo run -p cma-bench --release --bin tables -- table1
//! cargo run -p cma-bench --release --bin tables -- all
//! ```

use cma_bench::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: tables <experiment-id|all> ...");
        eprintln!("available experiments: {}", EXPERIMENT_IDS.join(", "));
        std::process::exit(2);
    }
    for id in &args {
        let reports = run_experiment(id);
        if reports.is_empty() {
            eprintln!(
                "unknown experiment `{id}`; available: {}",
                EXPERIMENT_IDS.join(", ")
            );
            continue;
        }
        for report in reports {
            println!("{report}");
            println!();
        }
    }
}
