//! Fig. 10 chain-scaling experiment under both LP backends.
//!
//! Runs the coupon-chain and random-walk-chain families (`cma-suite`'s
//! `synthetic` module) at growing chain lengths, once per backend
//! (`dense` reference simplex vs `sparse` revised simplex), solve mode, and
//! requested pricing rule, and writes the measurements as a JSON array — the
//! `BENCH_chains.json` artifact the CI `bench-smoke` job uploads to track the
//! perf trajectory.  Rows carry the pricing rule and the solver's iteration
//! count, so degeneracy regressions show up as iteration blow-up at fixed
//! problem size.
//!
//! ```text
//! cargo run -p cma-bench --release --bin chains -- \
//!     [--out BENCH_chains.json] [--max-n 10] [--step 3] [--threads N]
//!     [--global-cap 8] [--pricing devex|dantzig|partial|all]
//!     [--factor dense|lu|all] [--escalate]
//! ```
//!
//! `--escalate` additionally measures every global-mode configuration via an
//! in-session degree 1 → 2 escalation (`Analysis::escalate_from`), with
//! plan-reuse and escalation-pivot columns in the JSON rows.  The sweep then
//! also visits `--global-cap` itself (even when the stride would skip it):
//! the cap is the largest size global mode runs at, which is exactly where
//! the warm-escalation-vs-cold comparison matters.
//!
//! Compositional mode (the regime Fig. 10 actually evaluates — one LP per
//! SCC) is measured across the whole sweep.  Global mode — one monolithic LP
//! whose degeneracy once stalled both backends past ~6 links — is capped at
//! `--global-cap` chain links.  Since the pricing/presolve/anti-degeneracy
//! overhaul the default cap is 8 (up from 4): devex pricing plus the Harris
//! ratio test keep global-mode iteration counts near-linear in the chain
//! length, and the cap now only bounds the dense reference solver's
//! tableau-sized solve times, not a degeneracy blow-up.

use std::io::Write as _;

use central_moment_analysis::{
    json, Analysis, FactorKind, PricingRule, SimplexBackend, SolveMode, SparseBackend,
};
use cma_suite::{synthetic, Benchmark};

struct Row {
    family: &'static str,
    n: usize,
    mode: &'static str,
    backend: &'static str,
    pricing: &'static str,
    factor: &'static str,
    /// Whether the degree-2 result was reached by in-session escalation
    /// from a degree-1 session (`--escalate`) instead of a direct solve.
    escalated: bool,
    analysis_ms: f64,
    lp_variables: usize,
    lp_constraints: usize,
    lp_solves: usize,
    lp_iterations: usize,
    lp_etas: usize,
    lp_dual_pivots: usize,
    /// Nonbasic bound flips (long-step dual ratio test / primal flips on
    /// absorbed upper bounds).
    lp_bound_flips: usize,
    /// Forrest–Tomlin eta-file compactions performed by the LU updates.
    lp_eta_compactions: usize,
    /// Peak eta-file length between refactorizations.
    lp_eta_len: usize,
    /// Pivot-level time profile, in nanoseconds.
    ftran_ns: u64,
    btran_ns: u64,
    pricing_ns: u64,
    ratio_ns: u64,
    /// Kernel-path counters: solves completing hyper-sparse, dense
    /// fallbacks, and workspace reallocations after first sizing.
    hyper_sparse_ftrans: u64,
    hyper_sparse_btrans: u64,
    dense_fallbacks: u64,
    kernel_allocs: u64,
    /// Template columns the escalation replayed from the derivation plan.
    plan_reused_columns: usize,
    /// Dual-simplex pivots the escalated warm re-solve spent.
    escalation_dual_pivots: usize,
    mean_upper: f64,
}

#[allow(clippy::too_many_arguments)]
fn measure(
    benchmark: &Benchmark,
    family: &'static str,
    n: usize,
    mode: SolveMode,
    backend: &'static str,
    pricing: PricingRule,
    factor: FactorKind,
    threads: usize,
    escalate: bool,
) -> Option<Row> {
    let mut analysis = Analysis::benchmark(benchmark)
        .degree(2)
        .mode(mode)
        .threads(threads)
        .pricing(pricing)
        .factor(factor)
        .soundness(false);
    if escalate {
        analysis = analysis.escalate_from(1);
    }
    let report = match backend {
        "dense" => analysis.backend(SimplexBackend).run(),
        _ => analysis.backend(SparseBackend).run(),
    }
    .ok()?;
    let escalation = report.escalation;
    Some(Row {
        family,
        n,
        mode: match mode {
            SolveMode::Global => "global",
            SolveMode::Compositional => "compositional",
        },
        backend,
        pricing: pricing.name(),
        factor: factor.name(),
        escalated: escalate,
        // The full derive+solve time: for escalated runs `result.elapsed`
        // covers only the escalation step, while the analysis phase timing
        // includes the mandatory lower-degree base solve as well.
        analysis_ms: report.timings.analysis.as_secs_f64() * 1e3,
        lp_variables: report.lp.variables,
        lp_constraints: report.lp.constraints,
        lp_solves: report.lp.solves,
        lp_iterations: report.lp.iterations,
        lp_etas: report.lp.etas,
        lp_dual_pivots: report.lp.dual_pivots,
        lp_bound_flips: report.lp.bound_flips,
        lp_eta_compactions: report.lp.eta_compactions,
        lp_eta_len: report.lp.eta_len,
        ftran_ns: report.lp.ftran_ns,
        btran_ns: report.lp.btran_ns,
        pricing_ns: report.lp.pricing_ns,
        ratio_ns: report.lp.ratio_ns,
        hyper_sparse_ftrans: report.lp.hyper_sparse_ftrans,
        hyper_sparse_btrans: report.lp.hyper_sparse_btrans,
        dense_fallbacks: report.lp.dense_fallbacks,
        kernel_allocs: report.lp.kernel_allocs,
        plan_reused_columns: escalation.map_or(0, |e| e.reused_columns),
        escalation_dual_pivots: escalation.map_or(0, |e| e.dual_pivots),
        mean_upper: report.mean().hi(),
    })
}

/// The boxed-LP family: an LP-level warm-resolve microbench whose columns
/// carry *finite upper bounds* (singleton `x ≤ u` rows, absorbed into column
/// bounds by the solver).  The inference LPs are all `=`/`≥` systems, so this
/// family is what exercises — and keeps nonzero in the committed artifact —
/// the bound-flip counter of the long-step dual ratio test and, under `lu`,
/// the Forrest–Tomlin compaction counters.
///
/// Shape at size `n`: `3n` boxed variables, overlapping 3-windows capping
/// their sums, an objective pushing every column to its upper bound, then a
/// sequence of progressively tighter global cutting rows re-minimized warm.
fn measure_boxed(n: usize, backend: &'static str, factor: FactorKind) -> Row {
    use central_moment_analysis::lp::{
        Cmp, LpBackend, LpProblem, SolveStats, SolverTuning, TunedBackend,
    };

    let m = 3 * n;
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..m).map(|j| lp.add_var(format!("x{j}"), false)).collect();
    for (j, &v) in vars.iter().enumerate() {
        // Singleton Le rows: absorbed as column bounds, not tableau rows.
        lp.add_constraint(vec![(v, 1.0)], Cmp::Le, 1.0 + (j % 4) as f64 * 0.25);
    }
    for w in vars.windows(3) {
        lp.add_constraint(vec![(w[0], 1.0), (w[1], 1.0), (w[2], 1.0)], Cmp::Le, 2.75);
    }
    let objective: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(j, &v)| (v, -(1.0 + (j % 3) as f64)))
        .collect();

    let tuning = SolverTuning::with_factor(factor);
    let started = std::time::Instant::now();
    let (stats, solves) = {
        fn drive<B: LpBackend>(
            backend: &B,
            lp: &LpProblem,
            vars: &[central_moment_analysis::lp::LpVarId],
            objective: &[(central_moment_analysis::lp::LpVarId, f64)],
        ) -> (SolveStats, usize) {
            let mut session = backend.open(lp);
            let mut solution = session.minimize(objective);
            assert!(solution.is_optimal(), "boxed LP must solve: {solution:?}");
            let mut stats = solution.stats;
            let mut solves = 1;
            // Progressively tighter global cuts, each re-minimized warm.
            for _ in 0..3 {
                let total: f64 = vars.iter().map(|&v| solution.value(v)).sum();
                let row: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
                session.add_constraint(&row, Cmp::Le, total * 0.85);
                solution = session.minimize(objective);
                assert!(solution.is_optimal(), "cut re-solve must stay optimal");
                stats = stats.merge(&solution.stats);
                solves += 1;
            }
            (stats, solves)
        }
        match backend {
            "dense" => drive(
                &TunedBackend::new(SimplexBackend, tuning),
                &lp,
                &vars,
                &objective,
            ),
            _ => drive(
                &TunedBackend::new(SparseBackend, tuning),
                &lp,
                &vars,
                &objective,
            ),
        }
    };
    Row {
        family: "boxed-lp",
        n,
        mode: "warm",
        backend,
        pricing: PricingRule::default().name(),
        factor: factor.name(),
        escalated: false,
        analysis_ms: started.elapsed().as_secs_f64() * 1e3,
        lp_variables: m,
        lp_constraints: lp.num_constraints(),
        lp_solves: solves,
        lp_iterations: stats.iterations,
        lp_etas: stats.etas,
        lp_dual_pivots: stats.dual_pivots,
        lp_bound_flips: stats.bound_flips,
        lp_eta_compactions: stats.eta_compactions,
        lp_eta_len: stats.eta_len,
        ftran_ns: stats.ftran_ns,
        btran_ns: stats.btran_ns,
        pricing_ns: stats.pricing_ns,
        ratio_ns: stats.ratio_ns,
        hyper_sparse_ftrans: stats.hyper_sparse_ftrans,
        hyper_sparse_btrans: stats.hyper_sparse_btrans,
        dense_fallbacks: stats.dense_fallbacks,
        kernel_allocs: stats.kernel_allocs,
        plan_reused_columns: 0,
        escalation_dual_pivots: 0,
        mean_upper: 0.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_chains.json".to_string();
    let mut max_n = 10usize;
    let mut step = 3usize;
    let mut threads = 1usize;
    let mut global_cap = 8usize;
    let mut pricing_arg = "devex".to_string();
    let mut factor_arg = "all".to_string();
    let mut escalate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--max-n" => max_n = value("--max-n").parse().expect("numeric --max-n"),
            "--step" => step = value("--step").parse().expect("numeric --step"),
            "--threads" => threads = value("--threads").parse().expect("numeric --threads"),
            "--global-cap" => {
                global_cap = value("--global-cap").parse().expect("numeric --global-cap")
            }
            "--pricing" => pricing_arg = value("--pricing"),
            "--factor" => factor_arg = value("--factor"),
            "--escalate" => escalate = true,
            other => {
                eprintln!(
                    "unknown option `{other}` (expected --out/--max-n/--step/\
                     --threads/--global-cap/--pricing/--factor/--escalate)"
                );
                std::process::exit(2);
            }
        }
    }
    let pricings: Vec<PricingRule> = if pricing_arg == "all" {
        PricingRule::ALL.to_vec()
    } else {
        vec![pricing_arg.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })]
    };
    let factors: Vec<FactorKind> = if factor_arg == "all" {
        FactorKind::ALL.to_vec()
    } else {
        vec![factor_arg.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })]
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut sizes = synthetic::sweep(max_n, step);
    if escalate && global_cap <= max_n && !sizes.contains(&global_cap) {
        sizes.push(global_cap);
        sizes.sort_unstable();
    }
    for n in sizes {
        let coupon = synthetic::coupon_chain(n).in_suite("synthetic");
        let walk = synthetic::random_walk_chain(n).in_suite("synthetic");
        for mode in [SolveMode::Global, SolveMode::Compositional] {
            if mode == SolveMode::Global && n > global_cap {
                continue;
            }
            for backend in ["dense", "sparse"] {
                for &pricing in &pricings {
                    for &factor in &factors {
                        for (family, b) in [("coupon-chain", &coupon), ("walk-chain", &walk)] {
                            // With --escalate, global-mode configurations are
                            // additionally measured via a degree 1 -> 2
                            // in-session escalation (compositional sessions
                            // would restart cold, so the sweep skips them).
                            let mut variants = vec![false];
                            if escalate && mode == SolveMode::Global {
                                variants.push(true);
                            }
                            for escalated in variants {
                                match measure(
                                b, family, n, mode, backend, pricing, factor, threads, escalated,
                            ) {
                                Some(row) => {
                                    eprintln!(
                                        "{family}/{n} {} {backend} {}/{}{}: {:.1} ms ({} vars, {} rows, {} solves, {} iters, {} etas, {} plan cols reused)",
                                        row.mode,
                                        row.pricing,
                                        row.factor,
                                        if row.escalated { " escalate" } else { "" },
                                        row.analysis_ms,
                                        row.lp_variables,
                                        row.lp_constraints,
                                        row.lp_solves,
                                        row.lp_iterations,
                                        row.lp_etas,
                                        row.plan_reused_columns
                                    );
                                    rows.push(row);
                                }
                                None => eprintln!(
                                    "{family}/{n} {mode:?} {backend} {pricing} {factor}: not analyzable"
                                ),
                            }
                            }
                        }
                    }
                }
            }
        }
        // The boxed-LP warm family (LP-level, no analysis pipeline): one row
        // per backend × factorization at this size.
        for backend in ["dense", "sparse"] {
            for &factor in &factors {
                let row = measure_boxed(n, backend, factor);
                eprintln!(
                    "boxed-lp/{n} warm {backend} {}/{}: {:.1} ms ({} iters, {} dual pivots, {} bound flips, {} compactions, peak eta {})",
                    row.pricing,
                    row.factor,
                    row.analysis_ms,
                    row.lp_iterations,
                    row.lp_dual_pivots,
                    row.lp_bound_flips,
                    row.lp_eta_compactions,
                    row.lp_eta_len,
                );
                rows.push(row);
            }
        }
    }

    // Rows go through the shared report JSON writer so this encoder cannot
    // drift from the CLI's.
    let json = json::object([
        ("experiment", json::string("fig10-chains")),
        ("threads", threads.to_string()),
        (
            "rows",
            json::array(rows.iter().map(|r| {
                json::object([
                    ("family", json::string(r.family)),
                    ("n", r.n.to_string()),
                    ("mode", json::string(r.mode)),
                    ("backend", json::string(r.backend)),
                    ("pricing", json::string(r.pricing)),
                    ("factor", json::string(r.factor)),
                    ("escalated", r.escalated.to_string()),
                    (
                        "analysis_ms",
                        json::num((r.analysis_ms * 1e3).round() / 1e3),
                    ),
                    ("lp_variables", r.lp_variables.to_string()),
                    ("lp_constraints", r.lp_constraints.to_string()),
                    ("lp_solves", r.lp_solves.to_string()),
                    ("lp_iterations", r.lp_iterations.to_string()),
                    ("lp_etas", r.lp_etas.to_string()),
                    ("lp_dual_pivots", r.lp_dual_pivots.to_string()),
                    ("lp_bound_flips", r.lp_bound_flips.to_string()),
                    ("lp_eta_compactions", r.lp_eta_compactions.to_string()),
                    ("lp_eta_len", r.lp_eta_len.to_string()),
                    ("ftran_ns", r.ftran_ns.to_string()),
                    ("btran_ns", r.btran_ns.to_string()),
                    ("pricing_ns", r.pricing_ns.to_string()),
                    ("ratio_ns", r.ratio_ns.to_string()),
                    ("hyper_sparse_ftrans", r.hyper_sparse_ftrans.to_string()),
                    ("hyper_sparse_btrans", r.hyper_sparse_btrans.to_string()),
                    ("dense_fallbacks", r.dense_fallbacks.to_string()),
                    ("kernel_allocs", r.kernel_allocs.to_string()),
                    ("plan_reused_columns", r.plan_reused_columns.to_string()),
                    (
                        "escalation_dual_pivots",
                        r.escalation_dual_pivots.to_string(),
                    ),
                    ("mean_upper", json::num((r.mean_upper * 1e6).round() / 1e6)),
                ])
            })),
        ),
    ]);

    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output");
    file.write_all(b"\n").expect("write trailing newline");
    eprintln!("wrote {} rows to {out_path}", rows.len());

    // Summarize the dense-vs-sparse comparison on stdout.
    let speedup = |family: &str, mode: &str| -> Option<f64> {
        let total = |backend: &str| -> f64 {
            rows.iter()
                .filter(|r| {
                    r.family == family && r.mode == mode && r.backend == backend && !r.escalated
                })
                .map(|r| r.analysis_ms)
                .sum()
        };
        let dense = total("dense");
        let sparse = total("sparse");
        (sparse > 0.0).then(|| dense / sparse)
    };
    for family in ["coupon-chain", "walk-chain"] {
        for mode in ["global", "compositional"] {
            if let Some(s) = speedup(family, mode) {
                println!("{family} ({mode}): dense/sparse time ratio {s:.2}x");
            }
        }
    }
}
