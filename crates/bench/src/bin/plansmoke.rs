//! Derivation-plan smoke guard (run by the CI `bench-smoke` job).
//!
//! Pins the observable contracts of the derivation-plan layer on the paper's
//! Fig. 2 running example (the bounded biased random walk):
//!
//! 1. **warm degree escalation, pinned to scratch** — a degree 1 → 2
//!    escalation of the live sparse session must reproduce the from-scratch
//!    degree-2 bounds (Fig. 1(b): `E[tick] ≤ 2d + 4`) within solver
//!    tolerance while replaying the plan;
//! 2. **degree 2 → 4 escalation reuses the live session** — zero cold
//!    restarts, no additional from-scratch LP solve, nonzero template reuse,
//!    and a warm dual re-solve.  (A *cold* degree-4 global solve of this
//!    fixture blows the iteration limit after a minute; riding the warm
//!    degree-2 basis is what makes the fourth moment reachable at all, so
//!    no scratch comparison here — the escalated-vs-scratch pinning lives in
//!    `crates/inference/tests/escalation.rs` on fixtures cold can solve.)
//! 3. **shared-template soundness extension** — the Thm 4.4 step-counting
//!    derivation, run as a plan transformer over the main derivation's
//!    templates, must append *strictly fewer* constraints and variables
//!    than the PR 2 disjoint-by-construction baseline (re-measured here
//!    with the phase-1 warm strategy, which takes the disjoint path).
//!
//! Exits nonzero (panics) on any violated budget, failing the CI job.

use central_moment_analysis::inference::{
    analyze_session, analyze_with, soundness_report_in_session, AnalysisOptions,
};
use central_moment_analysis::lp::WarmStrategy;
use central_moment_analysis::suite::running;
use central_moment_analysis::{FactorKind, SolveMode, SparseBackend};

const TOL: f64 = 1e-4;

fn main() {
    let benchmark = running::rdwalk();
    let options = AnalysisOptions::degree(1)
        .with_mode(SolveMode::Global)
        .with_valuation(benchmark.valuation.clone())
        .with_factor(FactorKind::Lu);

    // --- Guard 1: degree 1 -> 2 escalation matches from-scratch. ----------
    let (_, mut session) =
        analyze_session(&benchmark.program, &options, &SparseBackend).expect("rdwalk at degree 1");
    let escalated = session.escalate_degree(2).expect("rdwalk escalates to 2");
    let mut scratch_options = options.clone();
    scratch_options.degree = 2;
    let scratch =
        analyze_with(&benchmark.program, &scratch_options, &SparseBackend).expect("degree 2");
    for k in 0..=2 {
        let e = escalated.raw_moment_at(k, &benchmark.valuation);
        let s = scratch.raw_moment_at(k, &benchmark.valuation);
        let scale = 1.0 + s.lo().abs().max(s.hi().abs());
        assert!(
            (e.lo() - s.lo()).abs() <= TOL * scale && (e.hi() - s.hi()).abs() <= TOL * scale,
            "escalated moment {k} [{}, {}] diverged from scratch [{}, {}]",
            e.lo(),
            e.hi(),
            s.lo(),
            s.hi()
        );
    }
    // Fig. 1(b) at d = 10: E[tick] <= 2d + 4 = 24.
    let mean = escalated.raw_moment_at(1, &benchmark.valuation);
    assert!((mean.hi() - 24.0).abs() < 1e-3, "mean bound {}", mean.hi());
    eprintln!(
        "plansmoke: 1->2 escalation matches scratch (mean <= {})",
        mean.hi()
    );

    // --- Guard 2: degree 2 -> 4 escalation reuses the live session. -------
    let (base, mut session) = {
        let mut o = options.clone();
        o.degree = 2;
        analyze_session(&benchmark.program, &o, &SparseBackend).expect("rdwalk at degree 2")
    };
    assert_eq!(base.lp_solves, 1);
    let escalated = session
        .escalate_degree(4)
        .expect("rdwalk escalates to degree 4");
    let stats = escalated.escalation.expect("escalation stats");
    assert_eq!(
        stats.cold_restarts, 0,
        "degree escalation must not restart from scratch on the happy path"
    );
    assert_eq!(
        escalated.lp_solves, 1,
        "escalation must not hand the backend a new from-scratch LP"
    );
    assert_eq!(session.minimizes(), 2, "one warm re-minimize expected");
    assert!(
        stats.reused_columns > 0 && stats.reused_slots > 0,
        "escalation must replay the derivation plan (got {stats:?})"
    );
    assert!(
        stats.dual_pivots > 0,
        "the sparse session must repair the appended rows by dual pivots"
    );
    let fourth = escalated.raw_moment_at(4, &benchmark.valuation);
    assert!(
        fourth.hi().is_finite() && fourth.hi() > 0.0,
        "fourth-moment bound must be finite, got {fourth:?}"
    );
    eprintln!(
        "plansmoke: 2->4 escalation ok (+{} vars, +{} rows, {} columns reused, \
         {} dual pivots, 0 cold restarts, E[C^4] <= {:.1})",
        stats.appended_variables,
        stats.appended_constraints,
        stats.reused_columns,
        stats.dual_pivots,
        fourth.hi()
    );

    // --- Guard 3: shared soundness extension beats the disjoint baseline. -
    let soundness_options = {
        let mut o = options.clone();
        o.degree = 2;
        o
    };
    let (_, mut shared_session) =
        analyze_session(&benchmark.program, &soundness_options, &SparseBackend).expect("rdwalk");
    let shared = soundness_report_in_session(&mut shared_session, &benchmark.program, 2);
    assert!(shared.is_sound(), "rdwalk is sound");
    assert!(
        shared.shared_templates && shared.shared_template_columns > 0,
        "dual/sparse sessions must share templates with the extension"
    );

    let disjoint_options = soundness_options.with_warm_resolve(WarmStrategy::Phase1);
    let (_, mut disjoint_session) =
        analyze_session(&benchmark.program, &disjoint_options, &SparseBackend).expect("rdwalk");
    let disjoint = soundness_report_in_session(&mut disjoint_session, &benchmark.program, 2);
    assert!(disjoint.is_sound(), "rdwalk is sound (disjoint)");
    assert!(
        shared.extension_constraints < disjoint.extension_constraints,
        "shared extension rows ({}) must be strictly below the disjoint baseline ({})",
        shared.extension_constraints,
        disjoint.extension_constraints
    );
    assert!(
        shared.extension_variables < disjoint.extension_variables,
        "shared extension columns ({}) must be strictly below the disjoint baseline ({})",
        shared.extension_variables,
        disjoint.extension_variables
    );
    eprintln!(
        "plansmoke: shared soundness extension ok ({} rows vs {} disjoint, \
         {} template columns shared)",
        shared.extension_constraints,
        disjoint.extension_constraints,
        shared.shared_template_columns
    );
}
