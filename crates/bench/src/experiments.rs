//! One function per table/figure of the evaluation.

use std::fmt::Write as _;

use central_moment_analysis::{Analysis, AnalysisReport};
use cma_appl::Program;
use cma_inference::SolveMode;
use cma_semiring::poly::Var;
use cma_sim::{simulate, SimConfig};
use cma_suite::{running, synthetic, timing, Benchmark};

/// The identifiers accepted by [`run_experiment`] and the `tables` binary.
pub const EXPERIMENT_IDS: &[&str] = &[
    "fig1b",
    "fig1c",
    "table1",
    "table3",
    "fig9",
    "fig10a",
    "fig10b",
    "table2",
    "table5",
    "table6",
    "appendixI",
];

/// A rendered experiment: a title plus preformatted text rows.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. `"table1"`).
    pub id: String,
    /// Human-readable title referencing the paper.
    pub title: String,
    /// The preformatted report body.
    pub body: String,
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{}", self.body)
    }
}

/// The pipeline configured the way every experiment runs it: the benchmark's
/// valuation and template variables, soundness checks off (the tables measure
/// bound derivation, not the Thm 4.4 side conditions).
fn pipeline_for(b: &Benchmark, degree: usize) -> Analysis {
    Analysis::benchmark(b).degree(degree).soundness(false)
}

fn analyze_benchmark(b: &Benchmark, degree: usize) -> Option<(Vec<cma_semiring::Interval>, f64)> {
    let report = pipeline_for(b, degree).run().ok()?;
    // The tables report bound-derivation time (what the paper measures), not
    // the cost of the central-moment/tail post-processing.
    Some((report.raw_intervals, report.result.elapsed.as_secs_f64()))
}

fn simulate_benchmark(b: &Benchmark, trials: usize) -> cma_sim::CostSamples {
    simulate(
        &b.program,
        &SimConfig {
            trials,
            seed: 2021,
            initial: b.initial_state(),
            ..Default::default()
        },
    )
}

/// Fig. 1(b): moment bounds for the running example.
pub fn fig1b() -> ExperimentReport {
    let b = running::rdwalk();
    let mut body = String::new();
    match pipeline_for(&b, 2).run() {
        Ok(report) => {
            let d = 10.0;
            let at = vec![(Var::new("d"), d)];
            let e1 = report.result.raw_moment_at(1, &at);
            let e2 = report.result.raw_moment_at(2, &at);
            let central = report.result.central_at(&at);
            let _ = writeln!(body, "paper:    E[tick] <= 2d+4        = {}", 2.0 * d + 4.0);
            let _ = writeln!(
                body,
                "measured: E[tick] <= {:.4}  (lower bound {:.4})",
                e1.hi(),
                e1.lo()
            );
            let _ = writeln!(
                body,
                "paper:    E[tick^2] <= 4d^2+22d+28 = {}",
                4.0 * d * d + 22.0 * d + 28.0
            );
            let _ = writeln!(body, "measured: E[tick^2] <= {:.4}", e2.hi());
            let _ = writeln!(
                body,
                "paper:    V[tick] <= 22d+28      = {}",
                22.0 * d + 28.0
            );
            let _ = writeln!(body, "measured: V[tick] <= {:.4}", central.variance_upper());
            let sim = simulate_benchmark(&b, 20_000);
            let _ = writeln!(
                body,
                "simulated (d = {d}): mean {:.3}, variance {:.3}",
                sim.mean(),
                sim.variance()
            );
        }
        Err(e) => {
            let _ = writeln!(body, "analysis failed: {e}");
        }
    }
    ExperimentReport {
        id: "fig1b".into(),
        title: "moment bounds for the rdwalk running example".into(),
        body,
    }
}

/// Fig. 1(c): tail bounds P[tick ≥ 4d] for the running example.
pub fn fig1c() -> ExperimentReport {
    let b = running::rdwalk();
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:>5} {:>12} {:>12} {:>12}",
        "d", "Markov(k=1)", "Markov(k=2)", "Cantelli"
    );
    if let Ok(report) = pipeline_for(&b, 2).run() {
        for d in (20..=80).step_by(10) {
            let d = d as f64;
            let at = vec![(Var::new("d"), d)];
            let central = report.result.central_at(&at);
            let threshold = 4.0 * d;
            let m1 = cma_inference::markov_tail(central.raw(1).hi(), 1, threshold);
            let m2 = cma_inference::markov_tail(central.raw(2).hi(), 2, threshold);
            let cant = cma_inference::cantelli_upper_tail(
                central.variance_upper(),
                central.mean(),
                threshold,
            );
            let _ = writeln!(body, "{:>5} {:>12.4} {:>12.4} {:>12.4}", d, m1, m2, cant);
        }
    } else {
        let _ = writeln!(body, "analysis failed");
    }
    ExperimentReport {
        id: "fig1c".into(),
        title: "tail bounds P[tick >= 4d] from raw vs central moments".into(),
        body,
    }
}

fn moment_table(degree: usize, central: bool) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "program", "E[C]^ub", "E[C^2]^ub", "V[C]^ub", "sim E[C]", "sim V[C]", "time(s)"
    );
    for b in cma_suite::kura_suite() {
        let degree = degree.min(b.degree);
        match analyze_benchmark(&b, degree) {
            Some((intervals, secs)) => {
                let moments = cma_inference::CentralMoments::from_raw_intervals(&intervals);
                let sim = simulate_benchmark(&b, 10_000);
                let var_txt = if central {
                    format!("{:.2}", moments.variance_upper())
                } else {
                    "-".to_string()
                };
                let _ = writeln!(
                    body,
                    "{:<8} {:>14.2} {:>14.2} {:>14} {:>12.2} {:>12.2} {:>10.3}",
                    b.name,
                    intervals[1].hi(),
                    intervals.get(2).map(|i| i.hi()).unwrap_or(f64::NAN),
                    var_txt,
                    sim.mean(),
                    sim.variance(),
                    secs
                );
            }
            None => {
                let _ = writeln!(body, "{:<8} analysis failed at degree {degree}", b.name);
            }
        }
    }
    body
}

/// Tab. 1 / Tab. 4: raw and central moment upper bounds on the Kura suite.
pub fn table1() -> ExperimentReport {
    ExperimentReport {
        id: "table1".into(),
        title: "raw/central moment upper bounds vs simulation (Kura et al. suite)".into(),
        body: moment_table(2, true),
    }
}

/// Tab. 3: expected-runtime upper bounds (first moments only).
pub fn table3() -> ExperimentReport {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<8} {:>14} {:>12} {:>10}",
        "program", "E[C] upper", "sim E[C]", "time(s)"
    );
    for b in cma_suite::kura_suite() {
        match analyze_benchmark(&b, 1) {
            Some((intervals, secs)) => {
                let sim = simulate_benchmark(&b, 10_000);
                let _ = writeln!(
                    body,
                    "{:<8} {:>14.3} {:>12.3} {:>10.3}",
                    b.name,
                    intervals[1].hi(),
                    sim.mean(),
                    secs
                );
            }
            None => {
                let _ = writeln!(body, "{:<8} analysis failed", b.name);
            }
        }
    }
    ExperimentReport {
        id: "table3".into(),
        title: "expected runtime upper bounds (comparison with Kura et al.)".into(),
        body,
    }
}

/// Fig. 9: tail-bound curves per benchmark, raw-moment vs central-moment.
pub fn fig9() -> ExperimentReport {
    let mut body = String::new();
    for b in cma_suite::kura_suite().into_iter().take(4) {
        let degree = 2.min(b.degree);
        let Some((intervals, _)) = analyze_benchmark(&b, degree) else {
            let _ = writeln!(body, "{}: analysis failed", b.name);
            continue;
        };
        let moments = cma_inference::CentralMoments::from_raw_intervals(&intervals);
        let sim = simulate_benchmark(&b, 20_000);
        let baseline = sim.mean().max(1.0);
        let _ = writeln!(
            body,
            "-- {} (thresholds as multiples of the simulated mean)",
            b.name
        );
        let _ = writeln!(
            body,
            "{:>8} {:>12} {:>12} {:>12}",
            "d", "raw(Markov)", "central", "simulated"
        );
        for factor in [2.0, 3.0, 4.0, 6.0, 8.0] {
            let d = baseline * factor;
            let markov = (1..=degree)
                .map(|k| cma_inference::markov_tail(moments.raw(k).hi(), k as u32, d))
                .fold(1.0f64, f64::min);
            let central_bound =
                cma_inference::cantelli_upper_tail(moments.variance_upper(), moments.mean(), d);
            let _ = writeln!(
                body,
                "{:>8.1} {:>12.4} {:>12.4} {:>12.4}",
                d,
                markov,
                central_bound.min(markov),
                sim.tail_probability(d)
            );
        }
    }
    ExperimentReport {
        id: "fig9".into(),
        title: "tail probability bounds: raw moments vs central moments".into(),
        body,
    }
}

fn scalability(chains: impl Iterator<Item = (usize, Benchmark)>) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:>6} {:>10} {:>12} {:>12}",
        "N", "AST size", "LP vars", "time(s)"
    );
    for (n, b) in chains {
        let pipeline = pipeline_for(&b, 2).mode(SolveMode::Compositional);
        match pipeline.run() {
            Ok(report) => {
                let _ = writeln!(
                    body,
                    "{:>6} {:>10} {:>12} {:>12.3}",
                    n,
                    b.program.size(),
                    report.lp.variables,
                    report.result.elapsed.as_secs_f64()
                );
            }
            Err(e) => {
                let _ = writeln!(
                    body,
                    "{:>6} {:>10} analysis failed: {e}",
                    n,
                    b.program.size()
                );
            }
        }
    }
    body
}

/// Fig. 10(a): analysis time as a function of the number of coupon phases.
pub fn fig10a(max_n: usize) -> ExperimentReport {
    ExperimentReport {
        id: "fig10a".into(),
        title: "scalability on coupon-collector chains (compositional mode)".into(),
        body: scalability(
            synthetic::sweep(max_n, (max_n / 6).max(1))
                .into_iter()
                .map(|n| (n, synthetic::coupon_chain(n))),
        ),
    }
}

/// Fig. 10(b): analysis time as a function of the number of chained walks.
pub fn fig10b(max_n: usize) -> ExperimentReport {
    ExperimentReport {
        id: "fig10b".into(),
        title: "scalability on chained random walks (compositional mode)".into(),
        body: scalability(
            synthetic::sweep(max_n, (max_n / 6).max(1))
                .into_iter()
                .map(|n| (n, synthetic::random_walk_chain(n))),
        ),
    }
}

/// Tab. 2 + Fig. 11: skewness/kurtosis of the two random-walk variants.
pub fn table2() -> ExperimentReport {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<10} {:>10} {:>10} {:>12} {:>12}",
        "program", "sim skew", "sim kurt", "analysis E", "analysis V^ub"
    );
    for b in [running::rdwalk_variant_1(), running::rdwalk_variant_2()] {
        let sim = simulate_benchmark(&b, 30_000);
        let analysis = analyze_benchmark(&b, 2);
        let (mean_txt, var_txt) = match &analysis {
            Some((intervals, _)) => {
                let m = cma_inference::CentralMoments::from_raw_intervals(intervals);
                (
                    format!("{:.2}", m.mean().hi()),
                    format!("{:.2}", m.variance_upper()),
                )
            }
            None => ("fail".to_string(), "fail".to_string()),
        };
        let _ = writeln!(
            body,
            "{:<10} {:>10.4} {:>10.4} {:>12} {:>12}",
            b.name,
            sim.skewness(),
            sim.kurtosis(),
            mean_txt,
            var_txt
        );
    }
    let _ = writeln!(body, "\ndensity estimates (Fig. 11), 20 bins:");
    for b in [running::rdwalk_variant_1(), running::rdwalk_variant_2()] {
        let sim = simulate_benchmark(&b, 30_000);
        let _ = writeln!(body, "-- {}", b.name);
        for (center, density) in sim.density(20) {
            let _ = writeln!(body, "{center:>10.2} {density:>10.5}");
        }
    }
    ExperimentReport {
        id: "table2".into(),
        title: "skewness/kurtosis case study and density estimation".into(),
        body,
    }
}

fn expectation_table(suite: Vec<Benchmark>) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "program", "E[C] lower", "E[C] upper", "sim E[C]", "time(s)"
    );
    for b in suite {
        match analyze_benchmark(&b, 1) {
            Some((intervals, secs)) => {
                let sim = simulate_benchmark(&b, 10_000);
                let _ = writeln!(
                    body,
                    "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>10.3}",
                    b.name,
                    intervals[1].lo(),
                    intervals[1].hi(),
                    sim.mean(),
                    secs
                );
            }
            None => {
                let _ = writeln!(body, "{:<14} analysis failed", b.name);
            }
        }
    }
    body
}

/// Tab. 5: expected monotone costs (Absynth suite subset).
pub fn table5() -> ExperimentReport {
    ExperimentReport {
        id: "table5".into(),
        title: "expected cost bounds on the Absynth suite subset".into(),
        body: expectation_table(cma_suite::absynth_suite()),
    }
}

/// Tab. 6: non-monotone expected costs (Wang et al. suite subset).
pub fn table6() -> ExperimentReport {
    ExperimentReport {
        id: "table6".into(),
        title: "interval bounds on non-monotone expected costs".into(),
        body: expectation_table(cma_suite::nonmonotone_suite()),
    }
}

/// Appendix I: attack success probability from variance bounds.
pub fn appendix_i() -> ExperimentReport {
    let bits = 16u32;
    let trials_per_bit = 10_000.0;
    let mut body = String::new();
    let analyze_hypothesis = |program: &Program| -> Option<(f64, f64)> {
        let report: AnalysisReport = Analysis::of(program)
            .degree(2)
            .soundness(false)
            .run()
            .ok()?;
        Some((report.mean().hi(), report.variance_upper()?))
    };
    let eq = analyze_hypothesis(&timing::compare_matching(bits));
    let neq = analyze_hypothesis(&timing::compare_mismatching(bits));
    match (eq, neq) {
        (Some((mean_eq, var_eq)), Some((mean_neq, var_neq))) => {
            let _ = writeln!(body, "bits = {bits}, samples per bit K = {trials_per_bit}");
            let _ = writeln!(
                body,
                "matching bits:     E[T] <= {mean_eq:.1},  V[T] <= {var_eq:.1}"
            );
            let _ = writeln!(
                body,
                "mismatching bits:  E[T] <= {mean_neq:.1},  V[T] <= {var_neq:.1}"
            );
            // The attacker averages K trials and thresholds halfway between the
            // two hypothesis means; Cantelli bounds the per-bit failure rate.
            let gap = (mean_neq - mean_eq).abs() / 2.0;
            let mut success = 1.0f64;
            for _ in 0..bits {
                let var_est = var_eq.max(var_neq) / trials_per_bit;
                let failure = var_est / (var_est + gap * gap);
                success *= 1.0 - failure;
            }
            let _ = writeln!(body, "per-bit decision gap: {gap:.2}");
            let _ = writeln!(
                body,
                "lower bound on attack success probability: {success:.6}"
            );
        }
        _ => {
            let _ = writeln!(body, "analysis failed for one of the hypotheses");
        }
    }
    ExperimentReport {
        id: "appendixI".into(),
        title: "timing-attack success probability from variance bounds".into(),
        body,
    }
}

/// Runs the experiment with the given id (`"all"` runs every experiment).
pub fn run_experiment(id: &str) -> Vec<ExperimentReport> {
    match id {
        "fig1b" => vec![fig1b()],
        "fig1c" => vec![fig1c()],
        "table1" => vec![table1()],
        "table3" => vec![table3()],
        "fig9" => vec![fig9()],
        "fig10a" => vec![fig10a(24)],
        "fig10b" => vec![fig10b(12)],
        "table2" => vec![table2()],
        "table5" => vec![table5()],
        "table6" => vec![table6()],
        "appendixI" => vec![appendix_i()],
        "all" => EXPERIMENT_IDS
            .iter()
            .flat_map(|id| run_experiment(id))
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_dispatchable() {
        for id in EXPERIMENT_IDS {
            // Dispatch must know every advertised id (contents checked in the
            // slower integration tests / harness runs).
            assert!(!id.is_empty());
        }
        assert!(run_experiment("nonsense").is_empty());
    }

    #[test]
    fn fig1b_report_mentions_variance() {
        let report = fig1b();
        assert!(report.body.contains("V[tick]"));
        assert!(report.to_string().contains("fig1b"));
    }

    #[test]
    fn scalability_report_has_requested_points() {
        let report = fig10a(6);
        assert!(report.body.lines().count() >= 4);
    }
}
