//! Benchmark harness regenerating the tables and figures of the paper's
//! evaluation section.
//!
//! The [`experiments`] module contains one function per experiment id (see
//! `DESIGN.md` §6); the `tables` binary dispatches on a command-line argument
//! and prints the corresponding rows/series as plain text / CSV, and the
//! Criterion benches under `benches/` measure analysis times.

pub mod experiments;

pub use experiments::{run_experiment, ExperimentReport, EXPERIMENT_IDS};
