//! Criterion benchmarks for the end-to-end analysis: one group per
//! table/figure family, measuring the time to derive the bounds that the
//! corresponding experiment reports (the quantity plotted in Fig. 10).
//! All benchmarks drive the `Analysis` pipeline facade, so what is measured
//! is exactly what `cma analyze` and the experiment harness execute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use central_moment_analysis::{Analysis, SolveMode};
use cma_suite::{running, synthetic};

fn bench_running_example(c: &mut Criterion) {
    let b = running::rdwalk();
    let mut group = c.benchmark_group("fig1_running_example");
    group.sample_size(10);
    for degree in [1usize, 2] {
        let pipeline = Analysis::benchmark(&b).degree(degree).soundness(false);
        group.bench_with_input(BenchmarkId::new("rdwalk", degree), &degree, |bencher, _| {
            bencher.iter(|| black_box(&pipeline).run())
        });
    }
    group.finish();
}

fn bench_kura_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_kura_suite");
    group.sample_size(10);
    for b in cma_suite::kura_suite().into_iter().take(4) {
        let pipeline = Analysis::benchmark(&b).degree(2).soundness(false);
        group.bench_with_input(BenchmarkId::new("degree2", &b.name), &b, |bencher, _| {
            bencher.iter(|| black_box(&pipeline).run())
        });
    }
    group.finish();
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_scalability");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let b = synthetic::coupon_chain(n);
        let pipeline = Analysis::benchmark(&b)
            .degree(2)
            .mode(SolveMode::Compositional)
            .soundness(false);
        group.bench_with_input(BenchmarkId::new("coupon_chain", n), &n, |bencher, _| {
            bencher.iter(|| black_box(&pipeline).run())
        });
    }
    group.finish();
}

fn bench_expected_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_expected_cost");
    group.sample_size(10);
    for b in cma_suite::absynth_suite().into_iter().take(4) {
        let pipeline = Analysis::benchmark(&b).degree(1).soundness(false);
        group.bench_with_input(BenchmarkId::new("degree1", &b.name), &b, |bencher, _| {
            bencher.iter(|| black_box(&pipeline).run())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_running_example,
    bench_kura_suite,
    bench_scalability,
    bench_expected_cost
);
criterion_main!(benches);
