//! Criterion micro-benchmarks for the algebraic substrate: moment-semiring
//! composition and polynomial arithmetic (the inner loops of the analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cma_semiring::moment::MomentVec;
use cma_semiring::poly::{Polynomial, Var};
use cma_semiring::Interval;

fn bench_moment_compose(c: &mut Criterion) {
    let a = MomentVec::from_raw(vec![
        Interval::point(1.0),
        Interval::new(2.0, 3.0),
        Interval::new(5.0, 9.0),
        Interval::new(10.0, 30.0),
        Interval::new(20.0, 90.0),
    ]);
    let b = MomentVec::from_raw(vec![
        Interval::point(1.0),
        Interval::new(1.0, 2.0),
        Interval::new(2.0, 6.0),
        Interval::new(4.0, 20.0),
        Interval::new(8.0, 70.0),
    ]);
    c.bench_function("moment_semiring_compose_deg4", |bencher| {
        bencher.iter(|| black_box(&a).compose(black_box(&b)))
    });
    c.bench_function("moment_semiring_combine_deg4", |bencher| {
        bencher.iter(|| black_box(&a).combine(black_box(&b)))
    });
}

fn bench_polynomial_ops(c: &mut Criterion) {
    let x = Var::new("x");
    let d = Var::new("d");
    let p = Polynomial::var(d.clone())
        .sub(&Polynomial::var(x.clone()))
        .pow(2)
        .scale(4.0)
        .add(&Polynomial::var(d.clone()).scale(22.0))
        .add(&Polynomial::constant(28.0));
    let replacement = Polynomial::var(x.clone()).add(&Polynomial::var(Var::new("t")));
    c.bench_function("polynomial_substitute_deg2", |bencher| {
        bencher.iter(|| black_box(&p).substitute(black_box(&x), black_box(&replacement)))
    });
    c.bench_function("polynomial_multiply_deg2", |bencher| {
        bencher.iter(|| black_box(&p).mul(black_box(&p)))
    });
}

criterion_group!(benches, bench_moment_compose, bench_polynomial_ops);
criterion_main!(benches);
