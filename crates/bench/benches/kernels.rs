//! Criterion micro-benchmarks for the simplex linear-algebra kernels:
//! ftran, btran, and eta-apply on solved chain-LP bases.
//!
//! Fixtures are chain-*shaped* LPs (the warmsmoke stand-in scaled to the
//! walk-chain n=4 / n=8 system sizes), solved once under the Markowitz LU;
//! the timed region is then a single kernel call against the captured
//! basis, through `bench_support`'s allocation-free window.  Each kernel
//! runs twice — on the hyper-sparse path and pinned to the dense scan
//! (`force_dense`) — so the printout shows what the Gilbert–Peierls
//! traversal buys at each size.  The eta-apply rows re-time ftran/btran
//! after warm cutting-row re-solves have grown the Forrest–Tomlin eta
//! file, isolating the per-eta application cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use central_moment_analysis::lp::bench_support::KernelFixture;
use central_moment_analysis::lp::{Cmp, FactorKind, LpProblem, LpVarId, SolverTuning};

/// The warmsmoke chain stand-in at `vars` variables: a coupled path of
/// `≥` rows plus one absorbed head bound, minimizing the column sum.
fn chain_problem(vars: usize) -> (LpProblem, Vec<LpVarId>) {
    let mut lp = LpProblem::new();
    let ids: Vec<_> = (0..vars)
        .map(|i| lp.add_var(format!("x{i}"), false))
        .collect();
    for w in ids.windows(2) {
        lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.5)], Cmp::Ge, 1.0);
    }
    lp.add_constraint(vec![(ids[0], 1.0)], Cmp::Le, 400.0);
    lp.set_objective(ids.iter().map(|&v| (v, 1.0)).collect());
    (lp, ids)
}

/// Chain sizes matching the walk-chain moment systems: n=1 ≈ 30 columns,
/// n=4 ≈ 120, n=8 ≈ 240.
const SIZES: &[(&str, usize)] = &[("n1", 30), ("n4", 120), ("n8", 240)];

fn bench_kernels(c: &mut Criterion) {
    for &(label, vars) in SIZES {
        let (problem, ids) = chain_problem(vars);
        let tuning = SolverTuning::with_factor(FactorKind::Lu);
        let mut fx = KernelFixture::solve(&problem, &tuning)
            .unwrap_or_else(|| panic!("chain fixture {label} must solve to optimality"));
        let cols = fx.nonbasic_cols();
        assert!(!cols.is_empty(), "fixture {label} has no nonbasic columns");
        let m = fx.rows();

        for (path, dense) in [("hyper", false), ("dense", true)] {
            fx.force_dense(dense);
            c.bench_function(&format!("kernels_ftran_{path}/{label}"), |b| {
                let mut i = 0usize;
                b.iter(|| {
                    let j = cols[i % cols.len()];
                    i += 1;
                    black_box(fx.ftran(black_box(j)))
                })
            });
            c.bench_function(&format!("kernels_btran_{path}/{label}"), |b| {
                b.iter(|| black_box(fx.btran()))
            });
            c.bench_function(&format!("kernels_inverse_row_{path}/{label}"), |b| {
                let mut p = 0usize;
                b.iter(|| {
                    let row = p % m;
                    p += 1;
                    black_box(fx.inverse_row(black_box(row)))
                })
            });
        }
        fx.force_dense(false);

        // One warm cutting-row re-solve first (end-to-end dual-path sanity
        // for the fixture), then load the factorization with direct
        // Forrest–Tomlin updates and re-time the kernels: the delta
        // against the rows above is the eta-apply cost at this load.
        fx.cut_and_resolve(&[(ids[0], 1.0)], Cmp::Ge, 50.0);
        let updates = fx.grow_etas(8);
        assert!(updates > 0, "fixture {label} could not apply FT updates");
        let etas = fx.eta_count();
        let cols = fx.nonbasic_cols();
        c.bench_function(
            &format!("kernels_eta_apply_ftran/{label}(upd={updates},etas={etas})"),
            |b| {
                let mut i = 0usize;
                b.iter(|| {
                    let j = cols[i % cols.len()];
                    i += 1;
                    black_box(fx.ftran(black_box(j)))
                })
            },
        );
        c.bench_function(
            &format!("kernels_eta_apply_btran/{label}(upd={updates},etas={etas})"),
            |b| b.iter(|| black_box(fx.btran())),
        );
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
