//! Quickstart: analyze the paper's running example (Fig. 2) through the
//! `Analysis` pipeline and print interval bounds on the first two moments and
//! the variance of its cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use central_moment_analysis::suite::running;
use central_moment_analysis::{Analysis, Var};

fn main() {
    let benchmark = running::rdwalk();
    println!("program:\n{}\n", benchmark.program);

    let report = Analysis::benchmark(&benchmark)
        .soundness(false)
        .run()
        .expect("the running example is analyzable");

    println!("symbolic bounds (over the initial state):");
    for k in 1..=2 {
        let bound = report.result.raw_moment_bound(k);
        println!("  E[tick^{k}] in [{}, {}]", bound.lower, bound.upper);
    }
    println!();

    // The symbolic bounds evaluate at any distance, not just the one the
    // pipeline reported at.
    for d in [10.0, 20.0, 50.0] {
        let at = vec![(Var::new("d"), d)];
        let e1 = report.result.raw_moment_at(1, &at);
        let central = report.result.central_at(&at);
        println!(
            "d = {d:>4}:  E[tick] <= {:>7.2}   V[tick] <= {:>8.2}   (paper: {:>5} and {:>5})",
            e1.hi(),
            central.variance_upper(),
            2.0 * d + 4.0,
            22.0 * d + 28.0,
        );
    }
}
