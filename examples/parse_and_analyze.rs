//! Parses an Appl program from its textual syntax (the concrete syntax of the
//! paper's figures), runs the full `Analysis` pipeline — bounds, central
//! moments, soundness side conditions — and prints the report.
//!
//! ```text
//! cargo run --release --example parse_and_analyze
//! ```

use central_moment_analysis::Analysis;

const SOURCE: &str = r#"
    # A gambler plays up to n rounds, winning 2 with probability 1/3 and
    # losing 1 otherwise (a non-monotone cost accumulator).
    pre n >= 0
    func main() begin
      while n > 0 do
        n := n - 1;
        if prob(0.3333333333333333) then
          tick(-2)
        else
          tick(1)
        fi
      od
    end
"#;

fn main() {
    let report = Analysis::parse(SOURCE)
        .expect("the program parses")
        .degree(2)
        .at("n", 20.0)
        .label("gambler")
        .run()
        .expect("analysis succeeds");

    let bounded = report
        .soundness
        .as_ref()
        .map(|s| s.bounded_updates)
        .unwrap_or(false);
    println!(
        "bounded-update check: {}",
        if bounded { "ok" } else { "violated" }
    );
    println!();

    println!("at n = 20:");
    println!(
        "  E[C]  in [{:.3}, {:.3}]   (the game is fair in expectation, so the truth is 0)",
        report.raw_moment(1).lo(),
        report.raw_moment(1).hi()
    );
    println!(
        "  E[C^2] in [{:.3}, {:.3}]",
        report.raw_moment(2).lo(),
        report.raw_moment(2).hi()
    );
    println!("  V[C]  <= {:.3}", report.variance_upper().unwrap());
}
