//! Parses an Appl program from its textual syntax (the concrete syntax of the
//! paper's figures), analyzes it, checks the soundness side conditions, and
//! prints the resulting bounds.
//!
//! ```text
//! cargo run --release --example parse_and_analyze
//! ```

use central_moment_analysis::appl::{parse_program, Var};
use central_moment_analysis::inference::{
    analyze, check_bounded_update, AnalysisOptions, CentralMoments,
};

const SOURCE: &str = r#"
    # A gambler plays up to n rounds, winning 2 with probability 1/3 and
    # losing 1 otherwise (a non-monotone cost accumulator).
    pre n >= 0
    func main() begin
      while n > 0 do
        n := n - 1;
        if prob(0.3333333333333333) then
          tick(-2)
        else
          tick(1)
        fi
      od
    end
"#;

fn main() {
    let program = parse_program(SOURCE).expect("the program parses");
    println!("parsed program:\n{program}\n");

    let violations = check_bounded_update(&program);
    println!(
        "bounded-update check: {}",
        if violations.is_empty() { "ok" } else { "violated" }
    );

    let n = Var::new("n");
    let options = AnalysisOptions::degree(2).with_valuation(vec![(n.clone(), 20.0)]);
    let result = analyze(&program, &options).expect("analysis succeeds");
    let at = vec![(n, 20.0)];
    let intervals = result.raw_intervals_at(&at);
    let central = CentralMoments::from_raw_intervals(&intervals);
    println!("at n = 20:");
    println!(
        "  E[C]  in [{:.3}, {:.3}]   (the game is fair in expectation, so the truth is 0)",
        intervals[1].lo(),
        intervals[1].hi()
    );
    println!("  E[C^2] in [{:.3}, {:.3}]", intervals[2].lo(), intervals[2].hi());
    println!("  V[C]  <= {:.3}", central.variance_upper());
}
