//! Reproduces the tail-bound comparison of Fig. 1(c): Markov bounds from raw
//! moments versus the Cantelli bound from the variance, for the running
//! example's cost accumulator.
//!
//! ```text
//! cargo run --release --example tail_bounds
//! ```

use central_moment_analysis::inference::{cantelli_upper_tail, markov_tail};
use central_moment_analysis::suite::running;
use central_moment_analysis::{Analysis, Var};

fn main() {
    let report = Analysis::benchmark(&running::rdwalk())
        .soundness(false)
        .run()
        .expect("analysis succeeds");

    println!("Upper bounds on P[tick >= 4d]:");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "d", "Markov (k=1)", "Markov (k=2)", "Cantelli"
    );
    for d in (20..=80).step_by(10) {
        let d = d as f64;
        let at = vec![(Var::new("d"), d)];
        let central = report.result.central_at(&at);
        let threshold = 4.0 * d;
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4}",
            d,
            markov_tail(central.raw(1).hi(), 1, threshold),
            markov_tail(central.raw(2).hi(), 2, threshold),
            cantelli_upper_tail(central.variance_upper(), central.mean(), threshold),
        );
    }
    println!();
    println!("As in the paper, the Markov bounds converge to 1/2 and 1/4 while the");
    println!("Cantelli bound (which uses the central moment) tends to 0 as d grows.");
}
