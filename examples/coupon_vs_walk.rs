//! Analyzes the two benchmark families of the Kura et al. comparison — a
//! coupon collector and a biased random walk — and cross-checks every derived
//! bound against Monte-Carlo simulation.
//!
//! ```text
//! cargo run --release --example coupon_vs_walk
//! ```

use central_moment_analysis::inference::{analyze, AnalysisOptions, CentralMoments};
use central_moment_analysis::sim::{simulate, SimConfig};
use central_moment_analysis::suite::kura;

fn main() {
    for benchmark in [kura::coupon_two(), kura::coupon_four(), kura::random_walk_int()] {
        let options = AnalysisOptions::degree(2).with_valuation(benchmark.valuation.clone());
        println!("== {} — {}", benchmark.name, benchmark.description);
        match analyze(&benchmark.program, &options) {
            Ok(result) => {
                let intervals = result.raw_intervals_at(&benchmark.valuation);
                let central = CentralMoments::from_raw_intervals(&intervals);
                let stats = simulate(
                    &benchmark.program,
                    &SimConfig {
                        trials: 20_000,
                        seed: 1,
                        initial: benchmark.initial_state(),
                        ..Default::default()
                    },
                );
                println!(
                    "  analysis:   E[C] <= {:.3}   E[C^2] <= {:.3}   V[C] <= {:.3}",
                    intervals[1].hi(),
                    intervals[2].hi(),
                    central.variance_upper()
                );
                println!(
                    "  simulation: E[C] =  {:.3}   E[C^2] =  {:.3}   V[C] =  {:.3}",
                    stats.mean(),
                    stats.raw_moment(2),
                    stats.variance()
                );
                assert!(stats.mean() <= intervals[1].hi() + 0.1, "upper bound violated");
            }
            Err(e) => println!("  analysis failed: {e}"),
        }
        println!();
    }
}
