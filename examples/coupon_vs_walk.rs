//! Analyzes the two benchmark families of the Kura et al. comparison — a
//! coupon collector and a biased random walk — through the `Analysis`
//! pipeline and cross-checks every derived bound against Monte-Carlo
//! simulation.
//!
//! ```text
//! cargo run --release --example coupon_vs_walk
//! ```

use central_moment_analysis::sim::{simulate, SimConfig};
use central_moment_analysis::suite::kura;
use central_moment_analysis::Analysis;

fn main() {
    for benchmark in [
        kura::coupon_two(),
        kura::coupon_four(),
        kura::random_walk_int(),
    ] {
        println!("== {} — {}", benchmark.name, benchmark.description);
        let outcome = Analysis::benchmark(&benchmark)
            .degree(2)
            .soundness(false)
            .run();
        match outcome {
            Ok(report) => {
                let stats = simulate(
                    &benchmark.program,
                    &SimConfig {
                        trials: 20_000,
                        seed: 1,
                        initial: benchmark.initial_state(),
                        ..Default::default()
                    },
                );
                println!(
                    "  analysis:   E[C] <= {:.3}   E[C^2] <= {:.3}   V[C] <= {:.3}",
                    report.raw_moment(1).hi(),
                    report.raw_moment(2).hi(),
                    report.variance_upper().unwrap()
                );
                println!(
                    "  simulation: E[C] =  {:.3}   E[C^2] =  {:.3}   V[C] =  {:.3}",
                    stats.mean(),
                    stats.raw_moment(2),
                    stats.variance()
                );
                assert!(
                    stats.mean() <= report.raw_moment(1).hi() + 0.1,
                    "upper bound violated"
                );
            }
            Err(e) => println!("  analysis failed: {e}"),
        }
        println!();
    }
}
