//! The timing-attack case study of Appendix I: bound the success probability
//! of an attacker who distinguishes matching from mismatching password bits by
//! timing the checker, using the analyzer's mean and variance bounds.
//!
//! ```text
//! cargo run --release --example timing_attack
//! ```

use central_moment_analysis::appl::Program;
use central_moment_analysis::suite::timing;
use central_moment_analysis::Analysis;

fn main() {
    let bits = 16u32;
    let samples_per_bit = 10_000.0;

    let hypothesis = |program: &Program| -> (f64, f64) {
        let report = Analysis::of(program)
            .degree(2)
            .soundness(false)
            .run()
            .expect("analysis succeeds");
        (report.mean().hi(), report.variance_upper().unwrap())
    };

    let (mean_eq, var_eq) = hypothesis(&timing::compare_matching(bits));
    let (mean_neq, var_neq) = hypothesis(&timing::compare_mismatching(bits));

    println!("password checker with {bits} unknown bits, {samples_per_bit} timing samples per bit");
    println!("  matching-bit hypothesis:    E[T] <= {mean_eq:.1}, V[T] <= {var_eq:.1}");
    println!("  mismatching-bit hypothesis: E[T] <= {mean_neq:.1}, V[T] <= {var_neq:.1}");

    // The attacker averages K timing samples and decides by thresholding at the
    // midpoint between the two hypothesis means; Cantelli's inequality bounds
    // the probability that the average falls on the wrong side.
    let gap = (mean_neq - mean_eq).abs() / 2.0;
    let variance_of_mean = var_eq.max(var_neq) / samples_per_bit;
    let per_bit_failure = variance_of_mean / (variance_of_mean + gap * gap);
    let success: f64 = (1.0 - per_bit_failure).powi(bits as i32);

    println!("  per-bit decision gap: {gap:.2}");
    println!("  per-bit failure bound (Cantelli): {per_bit_failure:.6}");
    println!("  attack success probability >= {success:.6}");
    println!();
    println!("A success probability this close to 1 means the random delays added by");
    println!("the checker do not mitigate the timing side channel — the conclusion of");
    println!("Appendix I.");
}
